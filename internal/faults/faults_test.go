package faults

import (
	"math"
	"testing"
)

func mustModel(t *testing.T, cfg Config, m int) *Model {
	t.Helper()
	md, err := NewModel(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return md
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	md := mustModel(t, Config{Seed: 9}, 8)
	if md.Config().Enabled() {
		t.Error("zero config reports Enabled")
	}
	for tk := int64(0); tk < 200; tk++ {
		if md.Capacity(tk) != 8 {
			t.Fatalf("capacity %d at t=%d without crashes", md.Capacity(tk), tk)
		}
		for p := 0; p < 8; p++ {
			if !md.Up(tk, p) || md.Straggling(tk, p) || md.NodeFails(tk, 1, p) {
				t.Fatalf("fault injected by zero config at t=%d p=%d", tk, p)
			}
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{MTBF: -1},
		{CrashRate: 1.5},
		{CrashRate: math.NaN()},
		{StragglerFrac: 2},
		{StragglerFrac: 0.5, StragglerSlow: 0.5},
		{MTTR: 5}, // mttr without mtbf
		{MTBF: math.Inf(1)},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
	if err := (Config{Seed: 1, MTBF: 100, MTTR: 10, CrashRate: 0.1, StragglerFrac: 0.25, StragglerSlow: 2}).Validate(); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
}

func TestNewModelRejectsBadMachine(t *testing.T) {
	if _, err := NewModel(Config{}, 0); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := NewModel(Config{MTBF: -1}, 4); err == nil {
		t.Error("accepted invalid config")
	}
}

// Draws must be pure functions of (seed, tick, entity): two models with the
// same config agree on every query, regardless of query order.
func TestModelDeterministicAcrossInstancesAndOrder(t *testing.T) {
	cfg := Config{Seed: 42, MTBF: 50, MTTR: 8, CrashRate: 0.1, StragglerFrac: 0.5, StragglerSlow: 3}
	a := mustModel(t, cfg, 6)
	b := mustModel(t, cfg, 6)
	// Query b backwards first to exercise the lazy timelines out of order.
	for tk := int64(299); tk >= 0; tk-- {
		b.Capacity(tk)
	}
	for tk := int64(0); tk < 300; tk++ {
		for p := 0; p < 6; p++ {
			if a.Up(tk, p) != b.Up(tk, p) {
				t.Fatalf("Up(%d, %d) disagrees", tk, p)
			}
			if a.Straggling(tk, p) != b.Straggling(tk, p) {
				t.Fatalf("Straggling(%d, %d) disagrees", tk, p)
			}
		}
		if a.NodeFails(tk, 3, 7) != b.NodeFails(tk, 3, 7) {
			t.Fatalf("NodeFails(%d) disagrees", tk)
		}
	}
}

func TestCrashTimelineAlternates(t *testing.T) {
	md := mustModel(t, Config{Seed: 1, MTBF: 20, MTTR: 5}, 4)
	downSeen, upSeen := false, false
	for tk := int64(0); tk < 2000; tk++ {
		c := md.Capacity(tk)
		if c < 0 || c > 4 {
			t.Fatalf("capacity %d outside [0, 4]", c)
		}
		if c < 4 {
			downSeen = true
		}
		if c > 0 {
			upSeen = true
		}
	}
	if !downSeen || !upSeen {
		t.Errorf("timeline never alternated: down=%v up=%v", downSeen, upSeen)
	}
	// UpProcs must agree with Up and be ascending.
	for tk := int64(0); tk < 100; tk++ {
		ids := md.UpProcs(tk, nil)
		if len(ids) != md.Capacity(tk) {
			t.Fatalf("UpProcs/Capacity mismatch at t=%d", tk)
		}
		for i, p := range ids {
			if !md.Up(tk, p) {
				t.Fatalf("UpProcs lists down proc %d at t=%d", p, tk)
			}
			if i > 0 && ids[i-1] >= p {
				t.Fatalf("UpProcs not ascending at t=%d: %v", tk, ids)
			}
		}
	}
}

func TestStragglerDesignationAndRate(t *testing.T) {
	md := mustModel(t, Config{Seed: 7, StragglerFrac: 1, StragglerSlow: 4}, 8)
	slowTicks := 0
	const horizon = 4000
	for p := 0; p < 8; p++ {
		if !md.IsStraggler(p) {
			t.Fatalf("frac=1 but proc %d not a straggler", p)
		}
	}
	for tk := int64(0); tk < horizon; tk++ {
		if md.Straggling(tk, 0) {
			slowTicks++
		}
	}
	// Expect ≈ 3/4 of ticks stalled; allow generous slack.
	frac := float64(slowTicks) / horizon
	if frac < 0.65 || frac > 0.85 {
		t.Errorf("straggler stalled %.2f of ticks, want ≈ 0.75", frac)
	}
	none := mustModel(t, Config{Seed: 7}, 8)
	for p := 0; p < 8; p++ {
		if none.IsStraggler(p) {
			t.Errorf("frac=0 designated straggler %d", p)
		}
	}
}

func TestNodeFailRateRoughlyMatches(t *testing.T) {
	md := mustModel(t, Config{Seed: 3, CrashRate: 0.2}, 4)
	fails := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if md.NodeFails(int64(i), i%17, i%5) {
			fails++
		}
	}
	frac := float64(fails) / n
	if frac < 0.17 || frac > 0.23 {
		t.Errorf("failure rate %.3f, want ≈ 0.2", frac)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := mustModel(t, Config{Seed: 1, MTBF: 30, MTTR: 10, CrashRate: 0.1}, 8)
	b := mustModel(t, Config{Seed: 2, MTBF: 30, MTTR: 10, CrashRate: 0.1}, 8)
	same := true
	for tk := int64(0); tk < 500 && same; tk++ {
		if a.Capacity(tk) != b.Capacity(tk) || a.NodeFails(tk, 1, 1) != b.NodeFails(tk, 1, 1) {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical fault patterns over 500 ticks")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	in := "seed=7, mtbf=200, mttr=20, crash=0.01, straggler=0.25, slow=4"
	c, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, MTBF: 200, MTTR: 20, CrashRate: 0.01, StragglerFrac: 0.25, StragglerSlow: 4}
	if c != want {
		t.Fatalf("parsed %+v, want %+v", c, want)
	}
	again, err := ParseSpec(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if again != c {
		t.Fatalf("round trip changed config: %+v vs %+v", again, c)
	}
	if empty, err := ParseSpec(""); err != nil || empty != (Config{}) {
		t.Errorf("empty spec: %+v, %v", empty, err)
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"mtbf",                   // no value
		"mtbf=x",                 // bad float
		"seed=1.5",               // non-integer seed
		"bogus=1",                // unknown key
		"crash=2",                // out of range
		"mttr=5",                 // mttr without mtbf
		"straggler=0.5,slow=0.2", // slowdown < 1
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}
