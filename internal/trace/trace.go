// Package trace validates and renders recorded schedules. The validator
// replays a sim.Trace against the original jobs and re-checks every
// execution-model invariant from outside the engine: processor capacity,
// node readiness (precedence), allocation bounds, and completion claims.
// The Gantt renderer turns a trace into the ASCII timelines shown by
// cmd/spaa-sim and the examples.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"dagsched/internal/dag"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
)

// Validate replays tr against jobs on an m-processor machine at the given
// speed and returns the first invariant violation found, or nil. It is an
// independent re-implementation of the engine's execution semantics used as
// a cross-check in tests and tools.
func Validate(tr *sim.Trace, jobs []*sim.Job, speed rational.Rat) error {
	if tr == nil {
		return fmt.Errorf("trace: nil trace")
	}
	sp := speed.Reduced()
	if sp.IsZero() {
		sp = rational.One()
	}
	if !sp.IsPositive() {
		return fmt.Errorf("trace: non-positive speed %v", speed)
	}
	byID := make(map[int]*sim.Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}
	states := make(map[int]*dag.State, len(jobs))

	var lastT int64 = -1
	for _, tick := range tr.Ticks {
		if tick.T <= lastT {
			return fmt.Errorf("trace: ticks not strictly increasing at t=%d", tick.T)
		}
		lastT = tick.T
		total := 0
		seen := make(map[int]bool, len(tick.Allocs))
		for _, a := range tick.Allocs {
			j, ok := byID[a.JobID]
			if !ok {
				return fmt.Errorf("trace: t=%d allocates unknown job %d", tick.T, a.JobID)
			}
			if seen[a.JobID] {
				return fmt.Errorf("trace: t=%d allocates job %d twice", tick.T, a.JobID)
			}
			seen[a.JobID] = true
			if tick.T < j.Release {
				return fmt.Errorf("trace: t=%d runs job %d before release %d", tick.T, a.JobID, j.Release)
			}
			if a.Procs <= 0 {
				return fmt.Errorf("trace: t=%d job %d has %d procs", tick.T, a.JobID, a.Procs)
			}
			total += a.Procs
			if len(a.Nodes) > a.Procs {
				return fmt.Errorf("trace: t=%d job %d executes %d nodes on %d procs", tick.T, a.JobID, len(a.Nodes), a.Procs)
			}
			st, ok := states[a.JobID]
			if !ok {
				g := j.Graph
				if sp.Den > 1 {
					g = scaleGraph(g, sp.Den)
				}
				st = dag.NewState(g)
				states[a.JobID] = st
			}
			nodeSeen := make(map[dag.NodeID]bool, len(a.Nodes))
			for _, v := range a.Nodes {
				if nodeSeen[v] {
					return fmt.Errorf("trace: t=%d job %d executes node %d twice", tick.T, a.JobID, v)
				}
				nodeSeen[v] = true
				if !st.IsReady(v) {
					return fmt.Errorf("trace: t=%d job %d executes non-ready node %d (precedence violation)", tick.T, a.JobID, v)
				}
				st.Apply(v, sp.Num)
			}
		}
		if total > tr.M {
			return fmt.Errorf("trace: t=%d uses %d > %d processors", tick.T, total, tr.M)
		}
	}
	return nil
}

// VerifyCompletions cross-checks a Result against its trace: every job the
// result reports completed must have all nodes executed in the trace, and
// no other job may.
func VerifyCompletions(res *sim.Result, jobs []*sim.Job) error {
	if res.Trace == nil {
		return fmt.Errorf("trace: result has no trace")
	}
	sp := rational.FromFloat(res.Speed, 1024)
	byID := make(map[int]*sim.Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}
	executed := make(map[int]int64)
	for _, tick := range res.Trace.Ticks {
		for _, a := range tick.Allocs {
			executed[a.JobID] += int64(len(a.Nodes))
		}
	}
	for _, js := range res.Jobs {
		j := byID[js.ID]
		if j == nil {
			return fmt.Errorf("trace: result mentions unknown job %d", js.ID)
		}
		if js.Completed {
			// At least ceil(W/speed-per-tick-per-node)… node-granularity makes
			// exact tick math shape-dependent; require minimum plausible:
			// at least one execution event per node is necessary.
			if executed[js.ID] < int64(j.Graph.NumNodes()) {
				return fmt.Errorf("trace: job %d reported complete after %d node-executions < %d nodes",
					js.ID, executed[js.ID], j.Graph.NumNodes())
			}
		}
	}
	_ = sp
	return nil
}

// Gantt renders the trace as one ASCII row per job: '#' ticks where the job
// executed (digit rows show processor counts > 1 as hex), '.' where it was
// live but idle. Wide traces are truncated to maxWidth columns.
func Gantt(tr *sim.Trace, jobs []*sim.Job, maxWidth int) string {
	if tr == nil || len(tr.Ticks) == 0 {
		return "(empty trace)\n"
	}
	if maxWidth <= 0 {
		maxWidth = 120
	}
	t0 := tr.Ticks[0].T
	t1 := tr.Ticks[len(tr.Ticks)-1].T
	span := t1 - t0 + 1
	width := span
	if width > int64(maxWidth) {
		width = int64(maxWidth)
	}
	// column of absolute tick t (bucketed when truncated)
	col := func(t int64) int { return int((t - t0) * width / span) }

	ids := make([]int, 0, len(jobs))
	byID := make(map[int]*sim.Job, len(jobs))
	for _, j := range jobs {
		ids = append(ids, j.ID)
		byID[j.ID] = j
	}
	sort.Ints(ids)

	rows := make(map[int][]byte, len(ids))
	for _, id := range ids {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		rows[id] = row
	}
	for _, tick := range tr.Ticks {
		for _, a := range tick.Allocs {
			row, ok := rows[a.JobID]
			if !ok {
				continue
			}
			c := col(tick.T)
			row[c] = procGlyph(a.Procs)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gantt t=[%d,%d] m=%d (1 col ≈ %.1f ticks)\n", t0, t1, tr.M, float64(span)/float64(width))
	for _, id := range ids {
		j := byID[id]
		fmt.Fprintf(&b, "J%-3d W=%-5d L=%-4d |%s|\n", id, j.Graph.TotalWork(), j.Graph.Span(), rows[id])
	}
	return b.String()
}

// procGlyph encodes a processor count in one character.
func procGlyph(p int) byte {
	switch {
	case p < 1:
		return '?'
	case p <= 9:
		return byte('0' + p)
	case p <= 15:
		return byte('a' + p - 10)
	default:
		return '#'
	}
}

// scaleGraph mirrors the engine's work scaling for speed denominators.
func scaleGraph(g *dag.DAG, k int64) *dag.DAG {
	b := dag.NewBuilder()
	for v := 0; v < g.NumNodes(); v++ {
		b.AddNode(g.Work(dag.NodeID(v)) * k)
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Successors(dag.NodeID(v)) {
			b.AddEdge(dag.NodeID(v), u)
		}
	}
	return b.MustBuild()
}

// Utilization renders a one-line ASCII sparkline of machine utilization
// over the trace: each column is a bucket of ticks shaded by the fraction of
// busy processors (space, ░-equivalent ASCII ".:-=#@" ramp).
func Utilization(tr *sim.Trace, maxWidth int) string {
	if tr == nil || len(tr.Ticks) == 0 || tr.M == 0 {
		return "(empty trace)\n"
	}
	if maxWidth <= 0 {
		maxWidth = 100
	}
	t0 := tr.Ticks[0].T
	t1 := tr.Ticks[len(tr.Ticks)-1].T
	span := t1 - t0 + 1
	width := span
	if width > int64(maxWidth) {
		width = int64(maxWidth)
	}
	busy := make([]int64, width)
	count := make([]int64, width)
	for _, tick := range tr.Ticks {
		col := (tick.T - t0) * width / span
		for _, a := range tick.Allocs {
			busy[col] += int64(len(a.Nodes))
		}
		count[col]++
	}
	ramp := []byte(" .:-=+#@")
	row := make([]byte, width)
	for i := range row {
		if count[i] == 0 {
			row[i] = ' '
			continue
		}
		frac := float64(busy[i]) / float64(count[i]*int64(tr.M))
		idx := int(frac * float64(len(ramp)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		row[i] = ramp[idx]
	}
	return fmt.Sprintf("util t=[%d,%d] m=%d |%s|\n", t0, t1, tr.M, row)
}
