package trace

import (
	"strings"
	"testing"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/profit"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

func stepFn(t *testing.T, value float64, deadline int64) profit.Fn {
	t.Helper()
	s, err := profit.NewStep(value, deadline)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func recordedRun(t *testing.T, m int, speed rational.Rat, jobs []*sim.Job, sched sim.Scheduler) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{M: m, Speed: speed, Record: true}, jobs, sched)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidateAcceptsEngineTraces(t *testing.T) {
	inst, err := workload.Generate(workload.Config{Seed: 5, N: 30, M: 8, Eps: 1, Load: 2, SlackSpread: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	scheds := []sim.Scheduler{
		core.NewSchedulerS(core.Options{Params: core.MustParams(1)}),
		&baselines.ListScheduler{Order: baselines.OrderEDF},
		&baselines.Federated{},
	}
	for _, sched := range scheds {
		res := recordedRun(t, inst.M, rational.One(), inst.Jobs, sched)
		if err := Validate(res.Trace, inst.Jobs, rational.One()); err != nil {
			t.Errorf("%s: %v", sched.Name(), err)
		}
		if err := VerifyCompletions(res, inst.Jobs); err != nil {
			t.Errorf("%s: %v", sched.Name(), err)
		}
	}
}

func TestValidateAcceptsSpeedScaledTraces(t *testing.T) {
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.ForkJoin(2, 3, 2), Release: 0, Profit: stepFn(t, 5, 100)},
	}
	speed := rational.New(3, 2)
	res := recordedRun(t, 4, speed, jobs, &baselines.ListScheduler{Order: baselines.OrderEDF})
	if err := Validate(res.Trace, jobs, speed); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsOversubscription(t *testing.T) {
	tr := &sim.Trace{M: 2, Ticks: []sim.TickRecord{
		{T: 0, Allocs: []sim.AllocRecord{{JobID: 1, Procs: 3, Nodes: []dag.NodeID{0}}}},
	}}
	jobs := []*sim.Job{{ID: 1, Graph: dag.Block(4, 1), Release: 0, Profit: stepFn(t, 1, 10)}}
	if err := Validate(tr, jobs, rational.One()); err == nil || !strings.Contains(err.Error(), "processors") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateRejectsPrecedenceViolation(t *testing.T) {
	// Chain: node 1 depends on node 0; executing node 1 first must fail.
	tr := &sim.Trace{M: 2, Ticks: []sim.TickRecord{
		{T: 0, Allocs: []sim.AllocRecord{{JobID: 1, Procs: 1, Nodes: []dag.NodeID{1}}}},
	}}
	jobs := []*sim.Job{{ID: 1, Graph: dag.Chain(2, 1), Release: 0, Profit: stepFn(t, 1, 10)}}
	if err := Validate(tr, jobs, rational.One()); err == nil || !strings.Contains(err.Error(), "precedence") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateRejectsEarlyStart(t *testing.T) {
	tr := &sim.Trace{M: 2, Ticks: []sim.TickRecord{
		{T: 0, Allocs: []sim.AllocRecord{{JobID: 1, Procs: 1, Nodes: []dag.NodeID{0}}}},
	}}
	jobs := []*sim.Job{{ID: 1, Graph: dag.Chain(2, 1), Release: 5, Profit: stepFn(t, 1, 10)}}
	if err := Validate(tr, jobs, rational.One()); err == nil || !strings.Contains(err.Error(), "release") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateRejectsUnknownJob(t *testing.T) {
	tr := &sim.Trace{M: 2, Ticks: []sim.TickRecord{
		{T: 0, Allocs: []sim.AllocRecord{{JobID: 9, Procs: 1, Nodes: []dag.NodeID{0}}}},
	}}
	if err := Validate(tr, nil, rational.One()); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateRejectsDuplicateNode(t *testing.T) {
	tr := &sim.Trace{M: 4, Ticks: []sim.TickRecord{
		{T: 0, Allocs: []sim.AllocRecord{{JobID: 1, Procs: 2, Nodes: []dag.NodeID{0, 0}}}},
	}}
	jobs := []*sim.Job{{ID: 1, Graph: dag.Block(4, 1), Release: 0, Profit: stepFn(t, 1, 10)}}
	if err := Validate(tr, jobs, rational.One()); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateRejectsNonMonotoneTicks(t *testing.T) {
	tr := &sim.Trace{M: 2, Ticks: []sim.TickRecord{{T: 3}, {T: 3}}}
	if err := Validate(tr, nil, rational.One()); err == nil || !strings.Contains(err.Error(), "increasing") {
		t.Errorf("err = %v", err)
	}
}

func TestGanttRendersRows(t *testing.T) {
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Block(8, 1), Release: 0, Profit: stepFn(t, 1, 50)},
		{ID: 2, Graph: dag.Chain(4, 1), Release: 2, Profit: stepFn(t, 1, 50)},
	}
	res := recordedRun(t, 4, rational.One(), jobs, &baselines.ListScheduler{Order: baselines.OrderFIFO})
	out := Gantt(res.Trace, jobs, 80)
	if !strings.Contains(out, "J1") || !strings.Contains(out, "J2") {
		t.Errorf("missing job rows:\n%s", out)
	}
	if !strings.Contains(out, "m=4") {
		t.Errorf("missing machine info:\n%s", out)
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	if got := Gantt(&sim.Trace{M: 2}, nil, 80); !strings.Contains(got, "empty") {
		t.Errorf("Gantt(empty) = %q", got)
	}
	if got := Gantt(nil, nil, 80); !strings.Contains(got, "empty") {
		t.Errorf("Gantt(nil) = %q", got)
	}
}

func TestGanttTruncatesWideTraces(t *testing.T) {
	jobs := []*sim.Job{{ID: 1, Graph: dag.Chain(300, 1), Release: 0, Profit: stepFn(t, 1, 1000)}}
	res := recordedRun(t, 1, rational.One(), jobs, &baselines.ListScheduler{Order: baselines.OrderFIFO})
	out := Gantt(res.Trace, jobs, 60)
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 120 {
			t.Errorf("line too wide (%d): %q", len(line), line)
		}
	}
}

func TestProcGlyph(t *testing.T) {
	cases := map[int]byte{1: '1', 9: '9', 10: 'a', 15: 'f', 30: '#', 0: '?'}
	for in, want := range cases {
		if got := procGlyph(in); got != want {
			t.Errorf("procGlyph(%d) = %c, want %c", in, got, want)
		}
	}
}

func TestUtilizationSparkline(t *testing.T) {
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Block(16, 1), Release: 0, Profit: stepFn(t, 1, 100)},
		{ID: 2, Graph: dag.Chain(10, 1), Release: 10, Profit: stepFn(t, 1, 100)},
	}
	res := recordedRun(t, 4, rational.One(), jobs, &baselines.ListScheduler{Order: baselines.OrderFIFO})
	out := Utilization(res.Trace, 60)
	if !strings.Contains(out, "util t=[0,") || !strings.Contains(out, "m=4") {
		t.Errorf("sparkline header wrong: %q", out)
	}
	// The first phase (block on 4 procs) is fully busy → '@' present; the
	// chain tail uses 1 of 4 procs → a low-ramp character appears.
	if !strings.Contains(out, "@") {
		t.Errorf("expected saturated columns: %q", out)
	}
	if Utilization(nil, 10) != "(empty trace)\n" {
		t.Error("nil trace not handled")
	}
}
