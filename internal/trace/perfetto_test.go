package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
	"dagsched/internal/workload"
)

// goldenJobs is a small fixed instance with contention, a preemption-prone
// mix, and an expiring job, so the golden trace exercises spans, splits, and
// every instant placement.
func goldenJobs(t *testing.T) []*sim.Job {
	t.Helper()
	return []*sim.Job{
		{ID: 0, Graph: dag.Block(12, 2), Release: 0, Profit: stepFn(t, 10, 40)},
		{ID: 1, Graph: dag.Chain(6, 1), Release: 1, Profit: stepFn(t, 4, 12)},
		{ID: 2, Graph: dag.ForkJoin(2, 3, 2), Release: 3, Profit: stepFn(t, 6, 30)},
		{ID: 3, Graph: dag.Chain(20, 1), Release: 0, Profit: stepFn(t, 1, 5)},
	}
}

func instrumentedRun(t *testing.T, m int, jobs []*sim.Job, sched sim.Scheduler) (*sim.Result, *telemetry.Recorder) {
	t.Helper()
	rec := telemetry.NewRecorder()
	telemetry.Attach(sched, rec)
	res, err := sim.Run(sim.Config{M: m, Speed: rational.One(), Record: true, Telemetry: rec}, jobs, sched)
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

// TestPerfettoGolden renders the fixed instance and compares byte-for-byte
// against the committed fixture. Regenerate with UPDATE_GOLDEN=1 after an
// intentional format change and eyeball the diff in ui.perfetto.dev.
func TestPerfettoGolden(t *testing.T) {
	jobs := goldenJobs(t)
	sched := core.NewSchedulerS(core.Options{Params: core.MustParams(1)})
	res, rec := instrumentedRun(t, 4, jobs, sched)
	ct, err := Perfetto(res.Trace, jobs, rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ct.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_perfetto.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("perfetto output drifted from %s (UPDATE_GOLDEN=1 regenerates after intentional changes)", golden)
	}
}

// TestPerfettoGoldenFixtureValid guards the committed fixture itself: it must
// satisfy the schema check regardless of how it was produced.
func TestPerfettoGoldenFixtureValid(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_perfetto.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace(data); err != nil {
		t.Error(err)
	}
}

func TestPerfettoValidatesOnEngineRuns(t *testing.T) {
	inst, err := workload.Generate(workload.Config{Seed: 11, N: 25, M: 6, Eps: 1, Load: 2.5, SlackSpread: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	scheds := []sim.Scheduler{
		core.NewSchedulerS(core.Options{Params: core.MustParams(1)}),
		&baselines.ListScheduler{Order: baselines.OrderEDF},
	}
	for _, sched := range scheds {
		res, rec := instrumentedRun(t, inst.M, inst.Jobs, sched)
		ct, err := Perfetto(res.Trace, inst.Jobs, rec.Events())
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		var buf bytes.Buffer
		if err := ct.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.ValidateChromeTrace(buf.Bytes()); err != nil {
			t.Errorf("%s: %v", sched.Name(), err)
		}
	}
}

func TestPerfettoDeterministic(t *testing.T) {
	jobs1 := goldenJobs(t)
	jobs2 := goldenJobs(t)
	render := func(jobs []*sim.Job) []byte {
		sched := &baselines.ListScheduler{Order: baselines.OrderEDF}
		res, rec := instrumentedRun(t, 4, jobs, sched)
		ct, err := Perfetto(res.Trace, jobs, rec.Events())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ct.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(jobs1), render(jobs2)) {
		t.Error("identical runs rendered different perfetto documents")
	}
}

func TestPerfettoRejectsBadInput(t *testing.T) {
	if _, err := Perfetto(nil, nil, nil); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := Perfetto(&sim.Trace{M: 0}, nil, nil); err == nil {
		t.Error("zero processors accepted")
	}
	bad := &sim.Trace{M: 2, Ticks: []sim.TickRecord{{T: 4}, {T: 4}}}
	if _, err := Perfetto(bad, nil, nil); err == nil || !strings.Contains(err.Error(), "increasing") {
		t.Errorf("non-increasing ticks: err = %v", err)
	}
}

func TestCrossCheckEventsAcceptsEngineStreams(t *testing.T) {
	inst, err := workload.Generate(workload.Config{Seed: 13, N: 30, M: 8, Eps: 1, Load: 3, SlackSpread: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	scheds := []sim.Scheduler{
		core.NewSchedulerS(core.Options{Params: core.MustParams(1)}),
		&baselines.ListScheduler{Order: baselines.OrderEDF},
		&baselines.ListScheduler{Order: baselines.OrderHDF},
	}
	for _, sched := range scheds {
		res, rec := instrumentedRun(t, inst.M, inst.Jobs, sched)
		if err := CrossCheckEvents(res.Trace, inst.Jobs, rational.One(), rec.Events()); err != nil {
			t.Errorf("%s: %v", sched.Name(), err)
		}
	}
}

func TestCrossCheckEventsSpeedScaled(t *testing.T) {
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.ForkJoin(2, 3, 2), Release: 0, Profit: stepFn(t, 5, 100)},
	}
	speed := rational.New(3, 2)
	sched := &baselines.ListScheduler{Order: baselines.OrderEDF}
	rec := telemetry.NewRecorder()
	res, err := sim.Run(sim.Config{M: 4, Speed: speed, Record: true, Telemetry: rec}, jobs, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := CrossCheckEvents(res.Trace, jobs, speed, rec.Events()); err != nil {
		t.Error(err)
	}
}

func TestCrossCheckEventsCatchesTampering(t *testing.T) {
	jobs := goldenJobs(t)
	sched := &baselines.ListScheduler{Order: baselines.OrderEDF}
	res, rec := instrumentedRun(t, 4, jobs, sched)
	events := rec.Events()

	// Dropping a completion must be reported as missing.
	dropped := make([]telemetry.Event, 0, len(events))
	removedOne := false
	for _, ev := range events {
		if !removedOne && ev.Kind == telemetry.KindComplete {
			removedOne = true
			continue
		}
		dropped = append(dropped, ev)
	}
	if !removedOne {
		t.Fatal("fixture produced no completions")
	}
	err := CrossCheckEvents(res.Trace, jobs, rational.One(), dropped)
	if err == nil || !strings.Contains(err.Error(), "missing from the event stream") {
		t.Errorf("dropped completion: err = %v", err)
	}

	// A fabricated completion must be reported as unsupported.
	forged := append(append([]telemetry.Event(nil), events...),
		telemetry.JobEvent(999, telemetry.KindComplete, 1))
	err = CrossCheckEvents(res.Trace, jobs, rational.One(), forged)
	if err == nil || !strings.Contains(err.Error(), "not supported by the replayed trace") {
		t.Errorf("forged completion: err = %v", err)
	}

	// Same for a fabricated preemption.
	forged = append(append([]telemetry.Event(nil), events...),
		telemetry.JobEvent(999, telemetry.KindPreempt, 1))
	err = CrossCheckEvents(res.Trace, jobs, rational.One(), forged)
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Errorf("forged preemption: err = %v", err)
	}

	if err := CrossCheckEvents(nil, jobs, rational.One(), nil); err == nil {
		t.Error("nil trace accepted")
	}
}
