package trace

import (
	"fmt"

	"dagsched/internal/obs"
	"dagsched/internal/telemetry"
)

// perfettoPIDRequests extends the track layout of Perfetto (pid 1 machine,
// pid 2 jobs) with a serving-tier process: one thread per captured request
// trace, named by its request ID, carrying one span per pipeline stage gap.
const perfettoPIDRequests = 3

// RequestSpans renders a serving daemon's request-trace ring as a Chrome
// trace-event document. Each trace becomes a thread (tid = snapshot index)
// whose spans cover the gaps between consecutive stage stamps — received →
// dequeued is the wire + mailbox cost, dequeued → committed the engine cost,
// and so on — so one slow submission can be dissected stage by stage in
// Perfetto. Wall-clock timestamps are rebased to the earliest stage across
// the snapshot and expressed in microseconds.
func RequestSpans(traces []obs.ReqTrace) *telemetry.ChromeTrace {
	ct := telemetry.NewChromeTrace()
	ct.AddProcessName(perfettoPIDRequests, "requests")

	var base int64 // earliest stage timestamp, µs since epoch
	haveBase := false
	for _, rt := range traces {
		for _, st := range rt.Stages {
			us := st.At.UnixMicro()
			if !haveBase || us < base {
				base, haveBase = us, true
			}
		}
	}

	for tid, rt := range traces {
		name := rt.ID
		if name == "" {
			name = fmt.Sprintf("request %d", tid)
		}
		ct.AddThreadName(perfettoPIDRequests, tid, name)
		args := map[string]any{"reqId": rt.ID, "shard": rt.Shard}
		if rt.Route != "" {
			args["route"] = rt.Route
		}
		if rt.JobID != 0 {
			args["jobId"] = rt.JobID
		}
		if rt.Decision != "" {
			args["decision"] = rt.Decision
		}
		for i := 1; i < len(rt.Stages); i++ {
			prev, cur := rt.Stages[i-1], rt.Stages[i]
			ts := prev.At.UnixMicro() - base
			dur := cur.At.UnixMicro() - prev.At.UnixMicro()
			ct.AddSpan(perfettoPIDRequests, tid,
				prev.Name+"→"+cur.Name, "request", ts, dur, args)
		}
		if len(rt.Stages) == 1 {
			st := rt.Stages[0]
			ct.AddInstant(perfettoPIDRequests, tid, st.Name, "request",
				st.At.UnixMicro()-base, args)
		}
	}
	ct.SortStable()
	return ct
}
