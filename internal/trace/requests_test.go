package trace

import (
	"strings"
	"testing"
	"time"

	"dagsched/internal/obs"
	"dagsched/internal/telemetry"
)

// validateTrace round-trips the document through WriteJSON and the exporter's
// own validator, returning the JSON text.
func validateTrace(t *testing.T, ct *telemetry.ChromeTrace) string {
	t.Helper()
	var b strings.Builder
	if err := ct.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace([]byte(b.String())); err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	return b.String()
}

func TestRequestSpans(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	at := func(us int64) time.Time { return base.Add(time.Duration(us) * time.Microsecond) }

	traces := []obs.ReqTrace{
		{
			ID: "req-a", Shard: 1, Route: "keyed", JobID: 7, Decision: "admitted",
			Stages: []obs.Stage{
				{Name: "received", At: at(0)},
				{Name: "dequeued", At: at(30)},
				{Name: "committed", At: at(90)},
				{Name: "replied", At: at(120)},
			},
		},
		{
			ID: "", Shard: -1, Route: "",
			Stages: []obs.Stage{{Name: "received", At: at(10)}},
		},
	}

	ct := RequestSpans(traces)
	validateTrace(t, ct)

	var spans, instants, threadNames int
	var sawProcess bool
	names := map[string]bool{}
	for _, ev := range ct.TraceEvents {
		if ev.PID != perfettoPIDRequests {
			t.Fatalf("event on pid %d, want %d", ev.PID, perfettoPIDRequests)
		}
		switch ev.Ph {
		case "X":
			spans++
			names[ev.Name] = true
			if ev.TID != 0 {
				t.Fatalf("span on tid %d, want 0 (first trace)", ev.TID)
			}
		case "i":
			instants++
			if ev.TID != 1 {
				t.Fatalf("instant on tid %d, want 1 (second trace)", ev.TID)
			}
		case "M":
			switch ev.Name {
			case "process_name":
				sawProcess = true
			case "thread_name":
				threadNames++
			}
		}
	}
	if !sawProcess {
		t.Error("no process_name metadata event")
	}
	if threadNames != 2 {
		t.Errorf("thread_name events = %d, want 2", threadNames)
	}
	if spans != 3 {
		t.Errorf("spans = %d, want 3 (one per stage gap)", spans)
	}
	if instants != 1 {
		t.Errorf("instants = %d, want 1 (single-stage trace)", instants)
	}
	for _, want := range []string{"received→dequeued", "dequeued→committed", "committed→replied"} {
		if !names[want] {
			t.Errorf("missing span %q (got %v)", want, names)
		}
	}
}

func TestRequestSpansRebasedAndArgs(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	traces := []obs.ReqTrace{{
		ID: "req-x", Shard: 0, Route: "pressure", JobID: 3, Decision: "parked",
		Stages: []obs.Stage{
			{Name: "received", At: base.Add(50 * time.Microsecond)},
			{Name: "replied", At: base.Add(80 * time.Microsecond)},
		},
	}}
	ct := RequestSpans(traces)
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.TS != 0 {
			t.Errorf("span ts = %d, want 0 (rebased to earliest stage)", ev.TS)
		}
		if ev.Dur != 30 {
			t.Errorf("span dur = %d, want 30", ev.Dur)
		}
		for k, want := range map[string]any{"reqId": "req-x", "shard": 0, "jobId": 3, "decision": "parked", "route": "pressure"} {
			if got, ok := ev.Args[k]; !ok || got != want {
				t.Errorf("args[%q] = %v (present %v), want %v", k, got, ok, want)
			}
		}
	}
}

func TestRequestSpansEmpty(t *testing.T) {
	ct := RequestSpans(nil)
	out := validateTrace(t, ct)
	if !strings.Contains(out, "requests") {
		t.Error("process name missing from empty export")
	}
}
