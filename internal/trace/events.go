package trace

import (
	"fmt"
	"sort"

	"dagsched/internal/dag"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
)

// CrossCheckEvents replays tr against jobs and verifies that the decision
// stream's completion and preemption claims are exactly the ones the replay
// derives: every claimed "complete" matches a job whose last node finished at
// the preceding tick, every claimed "preempt" matches a live unfinished job
// that ran the previous tick but not this one, and no derived occurrence is
// missing from the stream. It extends Validate's independent re-execution to
// the telemetry layer: a scheduler or engine bug that mis-reports either
// event kind is caught even when the schedule itself is legal.
func CrossCheckEvents(tr *sim.Trace, jobs []*sim.Job, speed rational.Rat, events []telemetry.Event) error {
	if tr == nil {
		return fmt.Errorf("trace: nil trace")
	}
	sp := speed.Reduced()
	if sp.IsZero() {
		sp = rational.One()
	}
	if !sp.IsPositive() {
		return fmt.Errorf("trace: non-positive speed %v", speed)
	}
	byID := make(map[int]*sim.Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}

	type occur struct {
		t   int64
		job int
	}
	var wantComplete, wantPreempt []occur

	states := make(map[int]*dag.State, len(jobs))
	stateOf := func(id int) (*dag.State, error) {
		st, ok := states[id]
		if !ok {
			j := byID[id]
			if j == nil {
				return nil, fmt.Errorf("trace: t allocates unknown job %d", id)
			}
			g := j.Graph
			if sp.Den > 1 {
				g = scaleGraph(g, sp.Den)
			}
			st = dag.NewState(g)
			states[id] = st
		}
		return st, nil
	}

	ranPrev := make(map[int]bool)
	prevT := int64(-2)
	for _, tick := range tr.Ticks {
		ran := make(map[int]bool, len(tick.Allocs))
		for _, a := range tick.Allocs {
			ran[a.JobID] = true
		}
		// A job preempted at tick T ran at T−1, is still unfinished, and has
		// not expired (expired jobs leave the system before the engine's
		// preemption accounting, so they produce no preempt event).
		if tick.T == prevT+1 {
			ids := make([]int, 0, len(ranPrev))
			for id := range ranPrev {
				if !ran[id] {
					ids = append(ids, id)
				}
			}
			sort.Ints(ids)
			for _, id := range ids {
				st := states[id]
				if st != nil && st.Done() {
					continue
				}
				if j := byID[id]; j != nil && tick.T >= j.AbsDeadline() {
					continue
				}
				wantPreempt = append(wantPreempt, occur{t: tick.T, job: id})
			}
		}
		for _, a := range tick.Allocs {
			st, err := stateOf(a.JobID)
			if err != nil {
				return err
			}
			wasDone := st.Done()
			for _, v := range a.Nodes {
				st.Apply(v, sp.Num)
			}
			if !wasDone && st.Done() {
				wantComplete = append(wantComplete, occur{t: tick.T + 1, job: a.JobID})
			}
		}
		ranPrev = ran
		prevT = tick.T
	}

	var gotComplete, gotPreempt []occur
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.KindComplete:
			gotComplete = append(gotComplete, occur{t: ev.T, job: ev.Job})
		case telemetry.KindPreempt:
			gotPreempt = append(gotPreempt, occur{t: ev.T, job: ev.Job})
		}
	}

	cmp := func(kind string, want, got []occur) error {
		key := func(o occur) string { return fmt.Sprintf("t=%d job=%d", o.t, o.job) }
		counts := make(map[string]int, len(want))
		for _, o := range want {
			counts[key(o)]++
		}
		for _, o := range got {
			k := key(o)
			if counts[k] == 0 {
				return fmt.Errorf("trace: event stream claims %s at %s not supported by the replayed trace", kind, k)
			}
			counts[k]--
		}
		for k, n := range counts {
			if n > 0 {
				return fmt.Errorf("trace: replay derives %s at %s missing from the event stream", kind, k)
			}
		}
		return nil
	}
	if err := cmp("complete", wantComplete, gotComplete); err != nil {
		return err
	}
	return cmp("preempt", wantPreempt, gotPreempt)
}
