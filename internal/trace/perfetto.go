package trace

import (
	"fmt"

	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
)

// Perfetto track layout (documented in DESIGN.md):
//
//	pid 1 "machine" — one thread per processor (tid = processor id) carrying
//	  "J<id>" occupancy spans, plus thread tid = M ("events") for
//	  machine-level decision events; processor-level events (fault begin/end)
//	  land on the processor's own thread.
//	pid 2 "jobs" — one thread per job (tid = job id) carrying "run ×N"
//	  execution spans (split whenever the grant size changes) and the job's
//	  decision events as instants.
const (
	perfettoPIDMachine = 1
	perfettoPIDJobs    = 2
)

// Perfetto converts a recorded trace plus an optional decision-event stream
// into a Chrome trace-event document (one simulated tick = 1µs). Processor
// occupancy is reconstructed deterministically by replaying the engine's
// grant-to-processor mapping: each tick's allocations claim operational
// processors in id order, exactly as the engine maps grants onto its up-list.
func Perfetto(tr *sim.Trace, jobs []*sim.Job, events []telemetry.Event) (*telemetry.ChromeTrace, error) {
	if tr == nil {
		return nil, fmt.Errorf("trace: nil trace (run with recording enabled)")
	}
	if tr.M < 1 {
		return nil, fmt.Errorf("trace: invalid processor count %d", tr.M)
	}
	ct := telemetry.NewChromeTrace()
	ct.AddProcessName(perfettoPIDMachine, "machine")
	ct.AddProcessName(perfettoPIDJobs, "jobs")
	for p := 0; p < tr.M; p++ {
		ct.AddThreadName(perfettoPIDMachine, p, fmt.Sprintf("proc %d", p))
	}
	ct.AddThreadName(perfettoPIDMachine, tr.M, "events")

	jobIDs := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		jobIDs[j.ID] = true
		ct.AddThreadName(perfettoPIDJobs, j.ID, fmt.Sprintf("job %d", j.ID))
	}
	for _, ev := range events {
		if ev.Job >= 0 && !jobIDs[ev.Job] {
			jobIDs[ev.Job] = true
			ct.AddThreadName(perfettoPIDJobs, ev.Job, fmt.Sprintf("job %d", ev.Job))
		}
	}

	// Replay occupancy. occ[p] is the job on processor p this tick (-1 idle);
	// spans merge across consecutive ticks with the same occupant.
	occ := make([]int, tr.M)
	prevOcc := make([]int, tr.M)
	spanStart := make([]int64, tr.M)
	for p := range prevOcc {
		prevOcc[p] = -1
	}
	// Per-job grant spans, likewise merged while the grant is constant.
	type jobSpan struct {
		procs int
		start int64
	}
	jobRun := make(map[int]*jobSpan)
	down := make(map[int]bool, tr.M)

	closeProc := func(p int, endT int64) {
		if prevOcc[p] >= 0 {
			ct.AddSpan(perfettoPIDMachine, p, fmt.Sprintf("J%d", prevOcc[p]), "exec",
				spanStart[p], endT-spanStart[p]+1, map[string]any{"job": prevOcc[p]})
		}
		prevOcc[p] = -1
	}
	closeJob := func(id int, endT int64) {
		js := jobRun[id]
		ct.AddSpan(perfettoPIDJobs, id, fmt.Sprintf("run ×%d", js.procs), "exec",
			js.start, endT-js.start+1, nil)
		delete(jobRun, id)
	}

	prevT := int64(-2)
	for _, tick := range tr.Ticks {
		if tick.T <= prevT {
			return nil, fmt.Errorf("trace: ticks not strictly increasing at t=%d", tick.T)
		}
		if tick.T != prevT+1 {
			// Discontinuity (idle gap): close every open span.
			for p := range prevOcc {
				closeProc(p, prevT)
			}
			for id := range jobRun {
				closeJob(id, prevT)
			}
		}
		for k := range down {
			delete(down, k)
		}
		if tick.Faults != nil {
			for _, p := range tick.Faults.Down {
				down[p] = true
			}
		}
		for p := range occ {
			occ[p] = -1
		}
		cursor := 0
		procsOf := make(map[int]int, len(tick.Allocs))
		for _, a := range tick.Allocs {
			procsOf[a.JobID] = a.Procs
			// Claim the next a.Procs operational processors in id order
			// (grants beyond capacity land nowhere, as in the engine).
			for claimed := 0; claimed < a.Procs && cursor < tr.M; cursor++ {
				if down[cursor] {
					continue
				}
				occ[cursor] = a.JobID
				claimed++
			}
		}
		for p := range occ {
			if occ[p] != prevOcc[p] {
				closeProc(p, prevT)
				if occ[p] >= 0 {
					spanStart[p] = tick.T
				}
				prevOcc[p] = occ[p]
			}
		}
		for id, js := range jobRun {
			if procsOf[id] != js.procs {
				closeJob(id, prevT)
			}
		}
		for id, procs := range procsOf {
			if _, open := jobRun[id]; !open {
				jobRun[id] = &jobSpan{procs: procs, start: tick.T}
			}
		}
		prevT = tick.T
	}
	for p := range prevOcc {
		closeProc(p, prevT)
	}
	for id := range jobRun {
		closeJob(id, prevT)
	}

	// Decision events as instants on the concerned track.
	for _, ev := range events {
		args := map[string]any{}
		if ev.Procs != 0 {
			args["procs"] = ev.Procs
		}
		if ev.Value != 0 {
			args["value"] = ev.Value
		}
		if ev.Why != "" {
			args["why"] = ev.Why
		}
		if len(args) == 0 {
			args = nil
		}
		switch {
		case ev.Job >= 0:
			ct.AddInstant(perfettoPIDJobs, ev.Job, string(ev.Kind), "decision", ev.T, args)
		case ev.Proc >= 0:
			ct.AddInstant(perfettoPIDMachine, ev.Proc, string(ev.Kind), "fault", ev.T, args)
		default:
			ct.AddInstant(perfettoPIDMachine, tr.M, string(ev.Kind), "machine", ev.T, args)
		}
	}
	ct.SortStable()
	return ct, nil
}
