package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplePath(t *testing.T) {
	g := NewNetwork()
	s, a, tt := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(s, a, 5)
	g.AddEdge(a, tt, 3)
	if got := g.MaxFlow(s, tt); got != 3 {
		t.Errorf("MaxFlow = %d, want 3", got)
	}
}

func TestClassicDiamond(t *testing.T) {
	// s→a(10), s→b(10), a→b(1), a→t(10), b→t(10): max flow 20.
	g := NewNetwork()
	s := g.AddNode()
	a := g.AddNode()
	b := g.AddNode()
	tt := g.AddNode()
	g.AddEdge(s, a, 10)
	g.AddEdge(s, b, 10)
	g.AddEdge(a, b, 1)
	g.AddEdge(a, tt, 10)
	g.AddEdge(b, tt, 10)
	if got := g.MaxFlow(s, tt); got != 20 {
		t.Errorf("MaxFlow = %d, want 20", got)
	}
}

func TestBottleneck(t *testing.T) {
	// CLRS-style: the min cut limits the flow.
	g := NewNetwork()
	s := g.AddNode()
	v1, v2, v3, v4 := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	tt := g.AddNode()
	g.AddEdge(s, v1, 16)
	g.AddEdge(s, v2, 13)
	g.AddEdge(v1, v3, 12)
	g.AddEdge(v2, v1, 4)
	g.AddEdge(v2, v4, 14)
	g.AddEdge(v3, v2, 9)
	g.AddEdge(v3, tt, 20)
	g.AddEdge(v4, v3, 7)
	g.AddEdge(v4, tt, 4)
	if got := g.MaxFlow(s, tt); got != 23 {
		t.Errorf("MaxFlow = %d, want 23 (CLRS figure 26.6)", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewNetwork()
	s, tt := g.AddNode(), g.AddNode()
	if got := g.MaxFlow(s, tt); got != 0 {
		t.Errorf("MaxFlow = %d, want 0", got)
	}
}

func TestSameSourceSink(t *testing.T) {
	g := NewNetwork()
	s := g.AddNode()
	if got := g.MaxFlow(s, s); got != 0 {
		t.Errorf("MaxFlow(s,s) = %d", got)
	}
}

func TestZeroCapacityEdge(t *testing.T) {
	g := NewNetwork()
	s, tt := g.AddNode(), g.AddNode()
	g.AddEdge(s, tt, 0)
	if got := g.MaxFlow(s, tt); got != 0 {
		t.Errorf("MaxFlow = %d, want 0", got)
	}
}

func TestEdgeFlowAccounting(t *testing.T) {
	g := NewNetwork()
	s, a, tt := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddEdge(s, a, 5)  // edge 0
	g.AddEdge(a, tt, 3) // edge 1
	g.MaxFlow(s, tt)
	if g.EdgeFlow(0) != 3 || g.EdgeFlow(1) != 3 {
		t.Errorf("edge flows = %d, %d; want 3, 3", g.EdgeFlow(0), g.EdgeFlow(1))
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { g := NewNetwork(); g.AddNode(); g.AddEdge(0, 1, 1) },
		func() { g := NewNetwork(); g.AddNode(); g.AddNode(); g.AddEdge(0, 1, -1) },
		func() { g := NewNetwork(); g.AddNode(); g.MaxFlow(0, 7) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestPropBipartiteMatchesGreedyBound: on random bipartite unit networks the
// max flow equals the maximum matching, which must be ≤ min(|L|,|R|) and ≥
// any greedy matching.
func TestPropBipartiteMatchesGreedyBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(8), 1+rng.Intn(8)
		g := NewNetwork()
		s := g.AddNode()
		left := g.AddNodes(nl)
		right := g.AddNodes(nr)
		tt := g.AddNode()
		adj := make([][]bool, nl)
		for i := 0; i < nl; i++ {
			g.AddEdge(s, left+i, 1)
			adj[i] = make([]bool, nr)
		}
		for j := 0; j < nr; j++ {
			g.AddEdge(right+j, tt, 1)
		}
		for i := 0; i < nl; i++ {
			for j := 0; j < nr; j++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(left+i, right+j, 1)
					adj[i][j] = true
				}
			}
		}
		flowVal := g.MaxFlow(s, tt)
		// Greedy matching lower bound.
		usedR := make([]bool, nr)
		greedy := int64(0)
		for i := 0; i < nl; i++ {
			for j := 0; j < nr; j++ {
				if adj[i][j] && !usedR[j] {
					usedR[j] = true
					greedy++
					break
				}
			}
		}
		upper := int64(nl)
		if int64(nr) < upper {
			upper = int64(nr)
		}
		return flowVal >= greedy && flowVal <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropFlowConservation: total out-flow of the source equals total
// in-flow of the sink and every edge respects its capacity.
func TestPropFlowConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := NewNetwork()
		g.AddNodes(n)
		type e struct {
			u, v int
			c    int64
		}
		var edges []e
		for k := 0; k < 3*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(rng.Intn(10))
			g.AddEdge(u, v, c)
			edges = append(edges, e{u, v, c})
		}
		total := g.MaxFlow(0, n-1)
		var outS, inT int64
		for i, ed := range edges {
			fl := g.EdgeFlow(i)
			if fl < 0 || fl > ed.c {
				return false
			}
			if ed.u == 0 {
				outS += fl
			}
			if ed.v == 0 {
				outS -= fl
			}
			if ed.v == n-1 {
				inT += fl
			}
			if ed.u == n-1 {
				inT -= fl
			}
		}
		return outS == total && inT == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
