// Package flow implements Dinic's maximum-flow algorithm on integer
// capacities. It is the substrate behind the exact feasibility test for
// preemptive malleable scheduling in internal/opt: jobs feed time intervals
// through a bipartite network and the set is schedulable iff the max flow
// saturates every job's work. The interval-capacity condition used by the
// branch-and-bound solver is provably equivalent for malleable jobs; the
// flow network is the independent implementation that property tests check
// it against.
package flow

import "fmt"

// Network is a flow network under construction. Nodes are dense integers
// from AddNode; edges carry integer capacities.
type Network struct {
	arcs  []arc
	heads [][]int32 // per-node indices into arcs
	n     int
}

type arc struct {
	to   int32
	cap  int64
	flow int64
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{} }

// AddNode adds a node and returns its ID.
func (g *Network) AddNode() int {
	g.heads = append(g.heads, nil)
	g.n++
	return g.n - 1
}

// AddNodes adds k nodes and returns the first ID.
func (g *Network) AddNodes(k int) int {
	first := g.n
	for i := 0; i < k; i++ {
		g.AddNode()
	}
	return first
}

// NumNodes returns the node count.
func (g *Network) NumNodes() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity (and its
// residual reverse edge). It panics on out-of-range nodes or negative
// capacity — both programmer errors.
func (g *Network) AddEdge(u, v int, capacity int64) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("flow: edge (%d,%d) out of range (n=%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("flow: negative capacity %d", capacity))
	}
	g.heads[u] = append(g.heads[u], int32(len(g.arcs)))
	g.arcs = append(g.arcs, arc{to: int32(v), cap: capacity})
	g.heads[v] = append(g.heads[v], int32(len(g.arcs)))
	g.arcs = append(g.arcs, arc{to: int32(u), cap: 0})
}

// MaxFlow computes the maximum s→t flow with Dinic's algorithm
// (O(V²E) worst case, far better on the unit-ish bipartite networks used
// here). It may be called once per network; flows accumulate.
func (g *Network) MaxFlow(s, t int) int64 {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		panic(fmt.Sprintf("flow: source/sink (%d,%d) out of range", s, t))
	}
	if s == t {
		return 0
	}
	var total int64
	level := make([]int32, g.n)
	iter := make([]int, g.n)
	queue := make([]int32, 0, g.n)
	for g.bfs(s, t, level, &queue) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := g.dfs(s, t, int64(1)<<62, level, iter)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total
}

// bfs builds the level graph; returns whether t is reachable.
func (g *Network) bfs(s, t int, level []int32, queue *[]int32) bool {
	for i := range level {
		level[i] = -1
	}
	q := (*queue)[:0]
	level[s] = 0
	q = append(q, int32(s))
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, ai := range g.heads[u] {
			a := &g.arcs[ai]
			if a.cap-a.flow > 0 && level[a.to] < 0 {
				level[a.to] = level[u] + 1
				q = append(q, a.to)
			}
		}
	}
	*queue = q
	return level[t] >= 0
}

// dfs sends blocking flow along the level graph.
func (g *Network) dfs(u, t int, limit int64, level []int32, iter []int) int64 {
	if u == t {
		return limit
	}
	for ; iter[u] < len(g.heads[u]); iter[u]++ {
		ai := g.heads[u][iter[u]]
		a := &g.arcs[ai]
		if a.cap-a.flow <= 0 || level[a.to] != level[u]+1 {
			continue
		}
		avail := a.cap - a.flow
		if avail > limit {
			avail = limit
		}
		pushed := g.dfs(int(a.to), t, avail, level, iter)
		if pushed > 0 {
			a.flow += pushed
			g.arcs[ai^1].flow -= pushed
			return pushed
		}
	}
	return 0
}

// EdgeFlow returns the flow on the i-th added edge (in AddEdge order).
func (g *Network) EdgeFlow(i int) int64 { return g.arcs[2*i].flow }
