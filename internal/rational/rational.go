// Package rational provides small exact rational arithmetic used to express
// speed-augmentation factors precisely. The simulation engine never touches
// floating point on its execution path: a speed s = Num/Den is realized by
// scaling all work by Den and processing Num units per processor-tick, and
// this package supplies the exact fractions those transformations need.
package rational

import (
	"fmt"
	"math"
)

// Rat is an exact rational number Num/Den with Den > 0.
// The zero value is 0/1 (i.e. zero), ready to use.
type Rat struct {
	Num int64
	Den int64
}

// New returns the rational num/den reduced to lowest terms with a positive
// denominator. It panics if den == 0.
func New(num, den int64) Rat {
	if den == 0 {
		panic("rational: zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd(abs(num), den)
	if g > 1 {
		num /= g
		den /= g
	}
	return Rat{Num: num, Den: den}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{Num: n, Den: 1} }

// One is the rational 1/1.
func One() Rat { return Rat{Num: 1, Den: 1} }

// FromFloat approximates f as a rational with denominator at most maxDen
// using the Stern–Brocot (continued fraction) expansion. It panics if f is
// NaN or infinite, or if maxDen < 1.
func FromFloat(f float64, maxDen int64) Rat {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		panic("rational: cannot convert NaN/Inf")
	}
	if maxDen < 1 {
		panic("rational: maxDen < 1")
	}
	neg := f < 0
	if neg {
		f = -f
	}
	// Continued fraction expansion with convergents p/q.
	var p0, q0, p1, q1 int64 = 0, 1, 1, 0
	x := f
	for i := 0; i < 64; i++ {
		a := int64(math.Floor(x))
		p2 := a*p1 + p0
		q2 := a*q1 + q0
		if q2 > maxDen || p2 < 0 || q2 < 0 {
			break
		}
		p0, q0, p1, q1 = p1, q1, p2, q2
		frac := x - math.Floor(x)
		if frac < 1e-12 {
			break
		}
		x = 1 / frac
	}
	if q1 == 0 {
		p1, q1 = p0, q0
	}
	if neg {
		p1 = -p1
	}
	return New(p1, q1)
}

func abs(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// Reduced reports r in lowest terms with positive denominator.
func (r Rat) Reduced() Rat {
	if r.Den == 0 {
		return Rat{Num: 0, Den: 1}
	}
	return New(r.Num, r.Den)
}

// Float returns the float64 value of r.
func (r Rat) Float() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// IsZero reports whether r equals zero.
func (r Rat) IsZero() bool { return r.Num == 0 }

// IsPositive reports whether r > 0.
func (r Rat) IsPositive() bool { return r.Num > 0 == (r.Den > 0) && r.Num != 0 }

// Add returns r + o in lowest terms.
func (r Rat) Add(o Rat) Rat {
	r, o = r.norm(), o.norm()
	return New(r.Num*o.Den+o.Num*r.Den, r.Den*o.Den)
}

// Sub returns r − o in lowest terms.
func (r Rat) Sub(o Rat) Rat {
	r, o = r.norm(), o.norm()
	return New(r.Num*o.Den-o.Num*r.Den, r.Den*o.Den)
}

// Mul returns r × o in lowest terms.
func (r Rat) Mul(o Rat) Rat {
	r, o = r.norm(), o.norm()
	// Cross-reduce first to limit overflow.
	g1 := gcd(abs(r.Num), o.Den)
	g2 := gcd(abs(o.Num), r.Den)
	return New((r.Num/g1)*(o.Num/g2), (r.Den/g2)*(o.Den/g1))
}

// Div returns r ÷ o in lowest terms. It panics if o is zero.
func (r Rat) Div(o Rat) Rat {
	if o.IsZero() {
		panic("rational: division by zero")
	}
	o = o.norm()
	return r.Mul(Rat{Num: o.Den, Den: o.Num}.Reduced())
}

// Cmp returns −1, 0, or +1 according to whether r < o, r == o, or r > o.
func (r Rat) Cmp(o Rat) int {
	d := r.Sub(o)
	switch {
	case d.Num < 0:
		return -1
	case d.Num > 0:
		return 1
	default:
		return 0
	}
}

// Less reports whether r < o.
func (r Rat) Less(o Rat) bool { return r.Cmp(o) < 0 }

// Equal reports whether r and o denote the same rational.
func (r Rat) Equal(o Rat) bool { return r.Cmp(o) == 0 }

// MulInt returns r × n in lowest terms.
func (r Rat) MulInt(n int64) Rat { return r.Mul(FromInt(n)) }

// CeilInt returns the least integer ≥ r.
func (r Rat) CeilInt() int64 {
	r = r.norm()
	q := r.Num / r.Den
	if r.Num%r.Den != 0 && r.Num > 0 {
		q++
	}
	return q
}

// FloorInt returns the greatest integer ≤ r.
func (r Rat) FloorInt() int64 {
	r = r.norm()
	q := r.Num / r.Den
	if r.Num%r.Den != 0 && r.Num < 0 {
		q--
	}
	return q
}

// String renders r as "num/den", or "num" when the denominator is one.
func (r Rat) String() string {
	r = r.norm()
	if r.Den == 1 {
		return fmt.Sprintf("%d", r.Num)
	}
	return fmt.Sprintf("%d/%d", r.Num, r.Den)
}

// norm returns a value with a valid (nonzero, positive) denominator so the
// zero struct behaves as 0/1.
func (r Rat) norm() Rat {
	if r.Den == 0 {
		return Rat{Num: 0, Den: 1}
	}
	if r.Den < 0 {
		return Rat{Num: -r.Num, Den: -r.Den}
	}
	return r
}
