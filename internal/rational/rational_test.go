package rational

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewReduces(t *testing.T) {
	cases := []struct {
		num, den     int64
		wantN, wantD int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 5, 0, 1},
		{6, 3, 2, 1},
		{7, 7, 1, 1},
	}
	for _, c := range cases {
		got := New(c.num, c.den)
		if got.Num != c.wantN || got.Den != c.wantD {
			t.Errorf("New(%d,%d) = %v, want %d/%d", c.num, c.den, got, c.wantN, c.wantD)
		}
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestZeroValueBehaves(t *testing.T) {
	var z Rat
	if !z.IsZero() {
		t.Error("zero value not IsZero")
	}
	if got := z.Add(New(1, 2)); !got.Equal(New(1, 2)) {
		t.Errorf("0 + 1/2 = %v", got)
	}
	if z.Float() != 0 {
		t.Errorf("zero Float = %v", z.Float())
	}
	if z.String() != "0" {
		t.Errorf("zero String = %q", z.String())
	}
}

func TestArithmetic(t *testing.T) {
	a := New(1, 2)
	b := New(1, 3)
	if got := a.Add(b); !got.Equal(New(5, 6)) {
		t.Errorf("1/2+1/3 = %v", got)
	}
	if got := a.Sub(b); !got.Equal(New(1, 6)) {
		t.Errorf("1/2-1/3 = %v", got)
	}
	if got := a.Mul(b); !got.Equal(New(1, 6)) {
		t.Errorf("1/2*1/3 = %v", got)
	}
	if got := a.Div(b); !got.Equal(New(3, 2)) {
		t.Errorf("(1/2)/(1/3) = %v", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	New(1, 2).Div(Rat{})
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b Rat
		want int
	}{
		{New(1, 2), New(1, 3), 1},
		{New(1, 3), New(1, 2), -1},
		{New(2, 4), New(1, 2), 0},
		{New(-1, 2), New(1, 2), -1},
		{FromInt(0), Rat{}, 0},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilFloor(t *testing.T) {
	cases := []struct {
		r         Rat
		ceil, flr int64
	}{
		{New(7, 2), 4, 3},
		{New(-7, 2), -3, -4},
		{New(4, 2), 2, 2},
		{New(0, 5), 0, 0},
		{New(1, 100), 1, 0},
	}
	for _, c := range cases {
		if got := c.r.CeilInt(); got != c.ceil {
			t.Errorf("Ceil(%v) = %d, want %d", c.r, got, c.ceil)
		}
		if got := c.r.FloorInt(); got != c.flr {
			t.Errorf("Floor(%v) = %d, want %d", c.r, got, c.flr)
		}
	}
}

func TestFromFloat(t *testing.T) {
	cases := []struct {
		f    float64
		want Rat
	}{
		{0.5, New(1, 2)},
		{1.5, New(3, 2)},
		{2.0, New(2, 1)},
		{-0.25, New(-1, 4)},
		{1.0 / 3.0, New(1, 3)},
		{2.5, New(5, 2)},
	}
	for _, c := range cases {
		if got := FromFloat(c.f, 1000); !got.Equal(c.want) {
			t.Errorf("FromFloat(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestFromFloatApproximation(t *testing.T) {
	got := FromFloat(math.Pi, 1000)
	if math.Abs(got.Float()-math.Pi) > 1e-5 {
		t.Errorf("FromFloat(pi) = %v (%.7f), too far from pi", got, got.Float())
	}
	if got.Den > 1000 {
		t.Errorf("FromFloat denominator %d exceeds bound", got.Den)
	}
}

func TestFromFloatPanics(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() { recover() }()
			FromFloat(f, 10)
			t.Errorf("FromFloat(%v) did not panic", f)
		}()
	}
}

func TestString(t *testing.T) {
	if got := New(3, 2).String(); got != "3/2" {
		t.Errorf("String = %q", got)
	}
	if got := FromInt(5).String(); got != "5" {
		t.Errorf("String = %q", got)
	}
}

// small draws bounded rationals for property tests, keeping intermediate
// products far from overflow.
func small(a, b int64) Rat {
	a = a % 1000
	b = b % 1000
	if b == 0 {
		b = 1
	}
	return New(a, b)
}

func TestPropAddCommutative(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		x, y := small(a1, a2), small(b1, b2)
		return x.Add(y).Equal(y.Add(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMulDistributesOverAdd(t *testing.T) {
	f := func(a1, a2, b1, b2, c1, c2 int64) bool {
		x, y, z := small(a1, a2), small(b1, b2), small(c1, c2)
		return x.Mul(y.Add(z)).Equal(x.Mul(y).Add(x.Mul(z)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSubInverse(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		x, y := small(a1, a2), small(b1, b2)
		return x.Add(y).Sub(y).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDivInverse(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		x, y := small(a1, a2), small(b1, b2)
		if y.IsZero() {
			return true
		}
		return x.Mul(y).Div(y).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCeilFloorBracket(t *testing.T) {
	f := func(a1, a2 int64) bool {
		x := small(a1, a2)
		c, fl := x.CeilInt(), x.FloorInt()
		if fl > c || c-fl > 1 {
			return false
		}
		return !FromInt(c).Less(x) && !x.Less(FromInt(fl))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropReducedLowestTerms(t *testing.T) {
	f := func(a1, a2 int64) bool {
		x := small(a1, a2)
		if x.Den <= 0 {
			return false
		}
		// gcd(|num|, den) must be 1 (or num == 0 with den == 1).
		if x.Num == 0 {
			return x.Den == 1
		}
		return gcd(abs(x.Num), x.Den) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
