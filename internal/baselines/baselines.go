// Package baselines implements the comparator schedulers the experiments
// run against the paper's algorithm: classical real-time policies (EDF,
// least-laxity-first), greedy profit policies (highest density first), naive
// policies (FIFO, work-conserving greedy), and a federated-style allocator.
// All are semi-non-clairvoyant and work-conserving unless noted; they share
// scheduler S's engine and differ only in ordering and allotment decisions.
package baselines

import (
	"cmp"
	"math"
	"slices"
	"sort"

	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
)

// Order ranks live jobs each tick; smaller keys run first.
type Order int

const (
	// OrderEDF runs the earliest absolute deadline first.
	OrderEDF Order = iota
	// OrderLLF runs the least laxity (deadline − now − remaining critical
	// estimate) first. Without DAG knowledge the laxity estimate uses
	// remaining work over the full machine, a common practical surrogate.
	OrderLLF
	// OrderFIFO runs the earliest arrival first.
	OrderFIFO
	// OrderHDF runs the highest profit density (p_i / W_i) first.
	OrderHDF
	// OrderProfit runs the largest absolute profit first.
	OrderProfit
)

// String names the order for reports.
func (o Order) String() string {
	switch o {
	case OrderEDF:
		return "edf"
	case OrderLLF:
		return "llf"
	case OrderFIFO:
		return "fifo"
	case OrderHDF:
		return "hdf"
	case OrderProfit:
		return "profit"
	default:
		return "order?"
	}
}

// ListScheduler is a work-conserving global list scheduler: each tick it
// ranks live jobs by the configured Order and hands out processors greedily,
// giving each job as many processors as it has ready nodes until the machine
// is full. With OrderEDF this is global EDF for DAG tasks; with OrderHDF it
// is the greedy density heuristic the paper's admission control improves on.
type ListScheduler struct {
	Order Order
	// AbandonHopeless, when set, stops running jobs that cannot possibly
	// finish: remaining work exceeds machine capacity before the deadline,
	// or the critical path alone exceeds the time left. Processors go to
	// the next job instead.
	AbandonHopeless bool
	// Resilient makes the scheduler track the capacity announced by fault
	// injection (sim.CapacityAware) and rank, feasibility-check, and allocate
	// against it instead of the configured m. Work loss needs no extra state:
	// ranking re-reads executed work every tick.
	Resilient bool

	m     int
	mEff  int // announced capacity (= m unless Resilient under faults)
	speed float64
	live  map[int]sim.JobView
	seq   []int    // arrival order
	rank  []ranked // per-tick ranking buffer, reused across Assign calls

	tel       *telemetry.Recorder // nil unless a run recorder is attached
	abandoned map[int]bool        // jobs already reported hopeless (telemetry only)
}

// ranked is one live job's position in a tick's ranking.
type ranked struct {
	id  int
	key float64
}

// Name implements sim.Scheduler.
func (l *ListScheduler) Name() string {
	n := l.Order.String()
	if l.AbandonHopeless {
		n += "+abandon"
	}
	if l.Resilient {
		n += "+res"
	}
	return n
}

// EventSafe implements sim.EventSafe: the ranking keys of EDF, FIFO, HDF and
// Profit are fixed per job, so the allocation only changes at events. LLF's
// laxity and the AbandonHopeless volume test re-read the clock and executed
// work every tick, so those configurations are not event-stationary. (The
// Resilient callbacks fire only under fault injection, which RunAuto routes
// to the tick engine anyway.)
func (l *ListScheduler) EventSafe() bool {
	return l.Order != OrderLLF && !l.AbandonHopeless
}

// Init implements sim.Scheduler.
func (l *ListScheduler) Init(env sim.Env) {
	l.m = env.M
	l.mEff = env.M
	l.speed = env.Speed
	l.live = make(map[int]sim.JobView)
	l.seq = nil
	l.abandoned = nil
}

// SetTelemetry implements telemetry.Instrumentable.
func (l *ListScheduler) SetTelemetry(rec *telemetry.Recorder) { l.tel = rec }

// reportHopeless emits one abandon event per hopeless job (telemetry only;
// the job merely stops being ranked, so without a recorder no state is kept).
func (l *ListScheduler) reportHopeless(t int64, id int, why string) {
	if l.tel == nil || l.abandoned[id] {
		return
	}
	if l.abandoned == nil {
		l.abandoned = make(map[int]bool)
	}
	l.abandoned[id] = true
	ev := telemetry.JobEvent(t, telemetry.KindAbandon, id)
	ev.Why = why
	l.tel.Emit(ev)
}

// OnCapacityChange implements sim.CapacityAware.
func (l *ListScheduler) OnCapacityChange(t int64, capacity int) {
	if l.Resilient {
		l.mEff = capacity
	}
}

// OnWorkLost implements sim.CapacityAware: nothing to do — ranking and the
// hopelessness test re-read executed work from the view every tick.
func (l *ListScheduler) OnWorkLost(t int64, jobID int, lost int64) {}

// OnArrival implements sim.Scheduler.
func (l *ListScheduler) OnArrival(t int64, v sim.JobView) {
	l.live[v.ID] = v
	l.seq = append(l.seq, v.ID)
}

// OnExpire implements sim.Scheduler.
func (l *ListScheduler) OnExpire(t int64, jobID int) { delete(l.live, jobID) }

// OnCompletion implements sim.Scheduler.
func (l *ListScheduler) OnCompletion(t int64, jobID int) { delete(l.live, jobID) }

// key returns the ranking key for a job at time t (smaller runs first).
func (l *ListScheduler) key(t int64, v sim.JobView, view sim.AssignView) float64 {
	switch l.Order {
	case OrderEDF:
		return float64(v.AbsDeadline())
	case OrderLLF:
		me := l.mEff
		if me < 1 {
			me = 1
		}
		remaining := float64(v.W-view.ExecutedWork(v.ID)) / (l.speed * float64(me))
		return float64(v.AbsDeadline()-t) - remaining
	case OrderFIFO:
		return float64(v.Release)
	case OrderHDF:
		return -v.Profit.At(v.RelDeadline()) / float64(v.W)
	case OrderProfit:
		return -v.Profit.At(v.RelDeadline())
	default:
		return 0
	}
}

// Assign implements sim.Scheduler.
func (l *ListScheduler) Assign(t int64, view sim.AssignView, dst []sim.Alloc) []sim.Alloc {
	order := l.rank[:0]
	for _, id := range l.seq {
		v, ok := l.live[id]
		if !ok {
			continue
		}
		if l.AbandonHopeless {
			left := float64(v.AbsDeadline() - t)
			remain := float64(v.W - view.ExecutedWork(id))
			if remain > left*l.speed*float64(l.mEff) {
				l.reportHopeless(t, id, "volume-infeasible")
				continue
			}
			if float64(v.L)/l.speed > left+float64(t-v.Release) {
				l.reportHopeless(t, id, "span-infeasible")
				continue
			}
		}
		order = append(order, ranked{id: id, key: l.key(t, v, view)})
	}
	l.rank = order
	slices.SortFunc(order, func(a, b ranked) int {
		if a.key != b.key {
			if a.key < b.key {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.id, b.id)
	})
	free := l.mEff
	for _, r := range order {
		if free == 0 {
			break
		}
		k := view.ReadyCount(r.id)
		if k > free {
			k = free
		}
		if k > 0 {
			dst = append(dst, sim.Alloc{JobID: r.id, Procs: k})
			free -= k
		}
	}
	return dst
}

var (
	_ sim.Scheduler     = (*ListScheduler)(nil)
	_ sim.CapacityAware = (*ListScheduler)(nil)
)

// Federated allocates each admitted job a fixed dedicated share of
// processors, in the spirit of federated scheduling for parallel real-time
// tasks (Li et al., ECRTS'14): heavy jobs (W > D) get ceil((W−L)/(D−L))
// dedicated processors; light jobs get one. A job is admitted only if its
// share is free for its whole window estimate; otherwise it is dropped.
type Federated struct {
	// Resilient makes the allocator honor fault-injection feedback
	// (sim.CapacityAware): admission budgets against the announced capacity,
	// a capacity drop evicts the most recently admitted jobs until the
	// remaining shares fit, and jobs that lose work to execution failures are
	// released once their share can no longer finish them in time.
	Resilient bool

	m       int
	mEff    int // announced capacity (= m unless Resilient under faults)
	speed   float64
	used    int
	share   map[int]int
	order   []int
	live    map[int]sim.JobView
	recheck map[int]bool // jobs with lost work awaiting a feasibility check

	tel *telemetry.Recorder // nil unless a run recorder is attached
}

// Name implements sim.Scheduler.
func (f *Federated) Name() string {
	if f.Resilient {
		return "federated+res"
	}
	return "federated"
}

// EventSafe implements sim.EventSafe: shares are fixed at admission and
// handed out unchanged every tick, so the allocation only changes at events
// (the resilient re-checks fire only under fault injection, which RunAuto
// routes to the tick engine anyway).
func (f *Federated) EventSafe() bool { return true }

// Init implements sim.Scheduler.
func (f *Federated) Init(env sim.Env) {
	f.m = env.M
	f.mEff = env.M
	f.speed = env.Speed
	f.used = 0
	f.share = make(map[int]int)
	f.live = make(map[int]sim.JobView)
	f.order = nil
	f.recheck = nil
}

// SetTelemetry implements telemetry.Instrumentable.
func (f *Federated) SetTelemetry(rec *telemetry.Recorder) { f.tel = rec }

// OnCapacityChange implements sim.CapacityAware: when the surviving capacity
// no longer covers the granted shares, evict the most recently admitted jobs
// first (they displaced the least prior commitment).
func (f *Federated) OnCapacityChange(t int64, capacity int) {
	if !f.Resilient {
		return
	}
	f.mEff = capacity
	for i := len(f.order) - 1; i >= 0 && f.used > f.mEff; i-- {
		id := f.order[i]
		if _, held := f.share[id]; held && f.tel != nil {
			ev := telemetry.JobEvent(t, telemetry.KindAbandon, id)
			ev.Why = "capacity-drop"
			f.tel.Emit(ev)
		}
		f.release(id)
	}
}

// OnWorkLost implements sim.CapacityAware: mark the job so the next Assign
// re-checks whether its dedicated share still finishes it in time.
func (f *Federated) OnWorkLost(t int64, jobID int, lost int64) {
	if !f.Resilient {
		return
	}
	if f.recheck == nil {
		f.recheck = make(map[int]bool)
	}
	f.recheck[jobID] = true
}

// OnArrival implements sim.Scheduler: compute the federated share and admit
// if it fits in the remaining processors.
func (f *Federated) OnArrival(t int64, v sim.JobView) {
	w := float64(v.W) / f.speed
	l := float64(v.L) / f.speed
	d := float64(v.RelDeadline())
	var need int
	switch {
	case d <= l: // infeasible even on infinitely many processors
		if f.tel != nil {
			ev := telemetry.JobEvent(t, telemetry.KindReject, v.ID)
			ev.Why = "infeasible"
			f.tel.Emit(ev)
		}
		return
	case w == l:
		need = 1
	default:
		need = int(math.Ceil((w - l) / (d - l)))
		if need < 1 {
			need = 1
		}
	}
	if need > f.mEff-f.used {
		if f.tel != nil {
			ev := telemetry.JobEvent(t, telemetry.KindReject, v.ID)
			ev.Why = "no-capacity"
			f.tel.Emit(ev)
		}
		return // dropped: federated admission is all-or-nothing
	}
	f.used += need
	f.share[v.ID] = need
	f.live[v.ID] = v
	f.order = append(f.order, v.ID)
	if f.tel != nil {
		ev := telemetry.JobEvent(t, telemetry.KindAdmit, v.ID)
		ev.Procs = need
		f.tel.Emit(ev)
	}
}

// OnExpire implements sim.Scheduler.
func (f *Federated) OnExpire(t int64, jobID int) { f.release(jobID) }

// OnCompletion implements sim.Scheduler.
func (f *Federated) OnCompletion(t int64, jobID int) { f.release(jobID) }

func (f *Federated) release(jobID int) {
	if share, ok := f.share[jobID]; ok {
		f.used -= share
		delete(f.share, jobID)
		delete(f.live, jobID)
	}
}

// Assign implements sim.Scheduler: every admitted job always runs on its
// dedicated share. In resilient mode, jobs marked by OnWorkLost are first
// released if the re-executed work cannot fit before the deadline.
func (f *Federated) Assign(t int64, view sim.AssignView, dst []sim.Alloc) []sim.Alloc {
	if f.Resilient && len(f.recheck) > 0 {
		ids := make([]int, 0, len(f.recheck))
		for id := range f.recheck {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		f.recheck = nil
		for _, id := range ids {
			share, ok := f.share[id]
			if !ok {
				continue
			}
			v := f.live[id]
			remain := float64(v.W - view.ExecutedWork(id))
			left := float64(v.AbsDeadline() - t)
			if remain > left*f.speed*float64(share) {
				if f.tel != nil {
					ev := telemetry.JobEvent(t, telemetry.KindAbandon, id)
					ev.Why = "hopeless-lost-work"
					f.tel.Emit(ev)
				}
				f.release(id)
			}
		}
	}
	for _, id := range f.order {
		share, ok := f.share[id]
		if !ok {
			continue
		}
		dst = append(dst, sim.Alloc{JobID: id, Procs: share})
	}
	return dst
}

var (
	_ sim.Scheduler     = (*Federated)(nil)
	_ sim.CapacityAware = (*Federated)(nil)
)
