package baselines

import (
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/profit"
	"dagsched/internal/sim"
)

func stepFn(t *testing.T, value float64, deadline int64) profit.Fn {
	t.Helper()
	s, err := profit.NewStep(value, deadline)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func allOrders() []Order {
	return []Order{OrderEDF, OrderLLF, OrderFIFO, OrderHDF, OrderProfit}
}

func TestListSchedulerSingleJobAllOrders(t *testing.T) {
	for _, o := range allOrders() {
		j := &sim.Job{ID: 1, Graph: dag.ForkJoin(2, 3, 1), Release: 0, Profit: stepFn(t, 5, 50)}
		res, err := sim.Run(sim.Config{M: 4}, []*sim.Job{j}, &ListScheduler{Order: o})
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		if res.Completed != 1 || res.TotalProfit != 5 {
			t.Errorf("%v: completed=%d profit=%v", o, res.Completed, res.TotalProfit)
		}
	}
}

func TestEDFPrefersEarlierDeadline(t *testing.T) {
	// Two chains on one processor: only one can finish. EDF must pick the
	// earlier deadline (job 2).
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Chain(6, 1), Release: 0, Profit: stepFn(t, 1, 20)},
		{ID: 2, Graph: dag.Chain(6, 1), Release: 0, Profit: stepFn(t, 1, 7)},
	}
	res, err := sim.Run(sim.Config{M: 1}, jobs, &ListScheduler{Order: OrderEDF})
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range res.Jobs {
		if js.ID == 2 && !js.Completed {
			t.Error("EDF failed the tight-deadline job")
		}
	}
	if res.Completed < 1 {
		t.Error("EDF completed nothing")
	}
}

func TestHDFPrefersDenserJob(t *testing.T) {
	// Same shape, job 2 pays 10×: HDF must run it first.
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Chain(6, 1), Release: 0, Profit: stepFn(t, 1, 6)},
		{ID: 2, Graph: dag.Chain(6, 1), Release: 0, Profit: stepFn(t, 10, 6)},
	}
	res, err := sim.Run(sim.Config{M: 1}, jobs, &ListScheduler{Order: OrderHDF})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProfit != 10 {
		t.Errorf("profit = %v, want 10", res.TotalProfit)
	}
}

func TestFIFOPrefersEarlierArrival(t *testing.T) {
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Chain(6, 1), Release: 1, Profit: stepFn(t, 10, 6)},
		{ID: 2, Graph: dag.Chain(6, 1), Release: 0, Profit: stepFn(t, 1, 8)},
	}
	res, err := sim.Run(sim.Config{M: 1}, jobs, &ListScheduler{Order: OrderFIFO})
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range res.Jobs {
		if js.ID == 2 && !js.Completed {
			t.Error("FIFO did not finish the first arrival")
		}
	}
}

func TestAbandonHopelessSkipsInfeasible(t *testing.T) {
	// Job 1's remaining work can never finish by its deadline on m=1;
	// with AbandonHopeless the processor goes to job 2 instead.
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Chain(100, 1), Release: 0, Profit: stepFn(t, 100, 10)},
		{ID: 2, Graph: dag.Chain(8, 1), Release: 0, Profit: stepFn(t, 1, 10)},
	}
	plain, err := sim.Run(sim.Config{M: 1}, jobs, &ListScheduler{Order: OrderProfit})
	if err != nil {
		t.Fatal(err)
	}
	abandon, err := sim.Run(sim.Config{M: 1}, jobs, &ListScheduler{Order: OrderProfit, AbandonHopeless: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalProfit != 0 {
		t.Errorf("plain profit = %v, want 0 (wasted on hopeless job)", plain.TotalProfit)
	}
	if abandon.TotalProfit != 1 {
		t.Errorf("abandon profit = %v, want 1", abandon.TotalProfit)
	}
}

func TestListSchedulerWorkConserving(t *testing.T) {
	// A single wide job must receive all processors it can use.
	j := &sim.Job{ID: 1, Graph: dag.Block(16, 1), Release: 0, Profit: stepFn(t, 1, 100)}
	res, err := sim.Run(sim.Config{M: 8}, []*sim.Job{j}, &ListScheduler{Order: OrderEDF})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].CompletedAt != 2 {
		t.Errorf("completed at %d, want 2", res.Jobs[0].CompletedAt)
	}
	if res.IdleProcTicks != 0 {
		t.Errorf("idle = %d, want 0 (work conserving)", res.IdleProcTicks)
	}
}

func TestFederatedSharesAndAdmission(t *testing.T) {
	// m=4. Job 1: W=16, L=2, D=9 → share = ceil(14/7) = 2.
	// Job 2 same → share 2, admitted (4 used).
	// Job 3 same → rejected (no processors left).
	mk := func(id int) *sim.Job {
		return &sim.Job{ID: id, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 1, 9)}
	}
	res, err := sim.Run(sim.Config{M: 4}, []*sim.Job{mk(1), mk(2), mk(3)}, &Federated{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Errorf("completed = %d, want 2 (third rejected)", res.Completed)
	}
	for _, js := range res.Jobs {
		if js.ID == 3 && js.Completed {
			t.Error("job 3 should have been rejected")
		}
	}
}

func TestFederatedReleasesShareOnCompletion(t *testing.T) {
	// Job 3 arrives after job 1 completes; its share is free again.
	mk := func(id int, rel int64) *sim.Job {
		return &sim.Job{ID: id, Graph: dag.Block(8, 2), Release: rel, Profit: stepFn(t, 1, 9)}
	}
	res, err := sim.Run(sim.Config{M: 4}, []*sim.Job{mk(1, 0), mk(2, 0), mk(3, 9)}, &Federated{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 {
		t.Errorf("completed = %d, want 3", res.Completed)
	}
}

func TestFederatedRejectsInfeasibleDeadline(t *testing.T) {
	// D ≤ L: no share can help; must be dropped, not hog processors.
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Chain(10, 1), Release: 0, Profit: stepFn(t, 1, 5)},
		{ID: 2, Graph: dag.Chain(5, 1), Release: 0, Profit: stepFn(t, 1, 10)},
	}
	res, err := sim.Run(sim.Config{M: 1}, jobs, &Federated{})
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range res.Jobs {
		if js.ID == 2 && !js.Completed {
			t.Error("feasible job starved by infeasible one")
		}
	}
}

func TestNames(t *testing.T) {
	if got := (&ListScheduler{Order: OrderEDF}).Name(); got != "edf" {
		t.Errorf("Name = %q", got)
	}
	if got := (&ListScheduler{Order: OrderHDF, AbandonHopeless: true}).Name(); got != "hdf+abandon" {
		t.Errorf("Name = %q", got)
	}
	if got := (&Federated{}).Name(); got != "federated" {
		t.Errorf("Name = %q", got)
	}
}
