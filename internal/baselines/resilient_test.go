package baselines

import (
	"reflect"
	"testing"

	"dagsched/internal/faults"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

func resilientJobs(t *testing.T, seed int64) []*sim.Job {
	t.Helper()
	in, err := workload.Generate(workload.Config{
		Seed: seed, N: 30, M: 6, Eps: 1, SlackSpread: 1, Load: 1.3, MaxProfit: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in.Jobs
}

// Without faults the CapacityAware callbacks never change the effective
// capacity, so resilient variants must match their plain counterparts.
func TestResilientBaselinesIdenticalWithoutFaults(t *testing.T) {
	pairs := []struct {
		name        string
		plain, resi sim.Scheduler
	}{
		{"edf", &ListScheduler{Order: OrderEDF}, &ListScheduler{Order: OrderEDF, Resilient: true}},
		{"llf+abandon", &ListScheduler{Order: OrderLLF, AbandonHopeless: true},
			&ListScheduler{Order: OrderLLF, AbandonHopeless: true, Resilient: true}},
		{"federated", &Federated{}, &Federated{Resilient: true}},
	}
	for _, pc := range pairs {
		a, err := sim.Run(sim.Config{M: 6}, resilientJobs(t, 1), pc.plain)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.Run(sim.Config{M: 6}, resilientJobs(t, 1), pc.resi)
		if err != nil {
			t.Fatal(err)
		}
		if a.TotalProfit != b.TotalProfit || !reflect.DeepEqual(a.Jobs, b.Jobs) {
			t.Errorf("%s: resilient variant diverged on a fault-free run", pc.name)
		}
	}
}

// Under a capacity-cutting fault model the resilient federated allocator must
// shed shares instead of oversubscribing dead processors, and every resilient
// baseline must remain deterministic.
func TestResilientBaselinesUnderFaults(t *testing.T) {
	fc := &faults.Config{Seed: 3, MTBF: 40, MTTR: 20, CrashRate: 0.05}
	for _, mk := range []func() sim.Scheduler{
		func() sim.Scheduler { return &ListScheduler{Order: OrderEDF, Resilient: true} },
		func() sim.Scheduler { return &ListScheduler{Order: OrderLLF, AbandonHopeless: true, Resilient: true} },
		func() sim.Scheduler { return &Federated{Resilient: true} },
	} {
		a, err := sim.Run(sim.Config{M: 6, Faults: fc}, resilientJobs(t, 2), mk())
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.Run(sim.Config{M: 6, Faults: fc}, resilientJobs(t, 2), mk())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: faulty run not deterministic", a.Scheduler)
		}
	}
}
