package realtime

import (
	"encoding/json"
	"fmt"

	"dagsched/internal/dag"
)

// Wire format for periodic task systems, consumed by cmd/spaa-rt.

type systemJSON struct {
	M     int        `json:"m"`
	Tasks []taskJSON `json:"tasks"`
}

type taskJSON struct {
	ID       int      `json:"id"`
	Graph    *dag.DAG `json:"graph"`
	Period   int64    `json:"period"`
	Deadline int64    `json:"deadline"`
}

// MarshalJSON implements json.Marshaler.
func (s System) MarshalJSON() ([]byte, error) {
	out := systemJSON{M: s.M}
	for _, t := range s.Tasks {
		out.Tasks = append(out.Tasks, taskJSON{ID: t.ID, Graph: t.Graph, Period: t.Period, Deadline: t.Deadline})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler and validates the result.
func (s *System) UnmarshalJSON(data []byte) error {
	var raw systemJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("realtime: %w", err)
	}
	out := System{M: raw.M}
	for _, t := range raw.Tasks {
		out.Tasks = append(out.Tasks, Task{ID: t.ID, Graph: t.Graph, Period: t.Period, Deadline: t.Deadline})
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*s = out
	return nil
}
