// Package realtime implements the recurrent DAG task model of the
// real-time-systems literature the paper builds on (Saifullah et al., Li et
// al., Baruah, Bonifaci et al.): each task releases a job instance — a DAG
// with work C and span L — every Period ticks, due Deadline ticks later
// (constrained: D ≤ T). It provides the classical schedulability tests that
// the paper's Section 1 contrasts with the throughput objective, plus a
// hyperperiod expansion that turns a task system into a sim job set so the
// tests can be checked against actual schedules.
//
// The tests are implemented in the spirit of the cited results, adapted to
// this repository's integer-tick model:
//
//   - Federated (Li et al., ECRTS'14): heavy tasks (C > D) get
//     n_i = ceil((C−L)/(D−L)) dedicated processors; light tasks are
//     partitioned first-fit by density C/D onto the remaining processors
//     with per-processor density ≤ 1.
//   - CapacityBound2 (same work): any system with total utilization
//     ≤ m/2 and every span ≤ D/2 is federated-schedulable — the capacity
//     augmentation bound of 2.
package realtime

import (
	"fmt"
	"math"
	"sort"

	"dagsched/internal/dag"
	"dagsched/internal/profit"
	"dagsched/internal/sim"
)

// Task is one recurrent DAG task.
type Task struct {
	ID       int
	Graph    *dag.DAG
	Period   int64
	Deadline int64 // relative, ≤ Period
}

// Work returns C, the task's total work per instance.
func (t Task) Work() int64 { return t.Graph.TotalWork() }

// Span returns L, the critical-path length per instance.
func (t Task) Span() int64 { return t.Graph.Span() }

// Utilization returns C/T.
func (t Task) Utilization() float64 { return float64(t.Work()) / float64(t.Period) }

// Density returns C/D (for constrained deadlines density ≥ utilization).
func (t Task) Density() float64 { return float64(t.Work()) / float64(t.Deadline) }

// Heavy reports whether the task needs more than one processor (C > D).
func (t Task) Heavy() bool { return t.Work() > t.Deadline }

// Validate checks the task's structure and timing parameters.
func (t Task) Validate() error {
	if t.Graph == nil {
		return fmt.Errorf("realtime: task %d has nil graph", t.ID)
	}
	if err := t.Graph.Validate(); err != nil {
		return fmt.Errorf("realtime: task %d: %w", t.ID, err)
	}
	if t.Period < 1 {
		return fmt.Errorf("realtime: task %d period %d", t.ID, t.Period)
	}
	if t.Deadline < 1 || t.Deadline > t.Period {
		return fmt.Errorf("realtime: task %d deadline %d not in [1, period %d]", t.ID, t.Deadline, t.Period)
	}
	return nil
}

// System is a set of recurrent tasks on m processors.
type System struct {
	M     int
	Tasks []Task
}

// Validate checks the system.
func (s System) Validate() error {
	if s.M < 1 {
		return fmt.Errorf("realtime: M = %d", s.M)
	}
	seen := map[int]bool{}
	for _, t := range s.Tasks {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.ID] {
			return fmt.Errorf("realtime: duplicate task ID %d", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// TotalUtilization returns Σ C_i/T_i.
func (s System) TotalUtilization() float64 {
	var u float64
	for _, t := range s.Tasks {
		u += t.Utilization()
	}
	return u
}

// FederatedAllocation is the outcome of the federated schedulability test.
type FederatedAllocation struct {
	Schedulable bool
	// HeavyCores maps heavy task IDs to their dedicated core counts.
	HeavyCores map[int]int
	// LightCores is the number of processors left for light tasks.
	LightCores int
	// LightAssignment maps light task IDs to their light-core index in
	// [0, LightCores) from the first-fit partition.
	LightAssignment map[int]int
	// Reason explains a rejection.
	Reason string
}

// Federated runs the federated schedulability test.
func Federated(s System) FederatedAllocation {
	out := FederatedAllocation{HeavyCores: map[int]int{}, LightAssignment: map[int]int{}}
	used := 0
	var light []Task
	for _, t := range s.Tasks {
		if t.Heavy() {
			if t.Deadline <= t.Span() {
				out.Reason = fmt.Sprintf("task %d: span %d ≥ deadline %d", t.ID, t.Span(), t.Deadline)
				return out
			}
			n := int(math.Ceil(float64(t.Work()-t.Span()) / float64(t.Deadline-t.Span())))
			if n < 1 {
				n = 1
			}
			out.HeavyCores[t.ID] = n
			used += n
		} else {
			light = append(light, t)
		}
	}
	if used > s.M {
		out.Reason = fmt.Sprintf("heavy tasks need %d > %d processors", used, s.M)
		return out
	}
	out.LightCores = s.M - used
	// First-fit partition of light tasks by density onto the remaining
	// processors, one task sequentialized per bin slot (density ≤ 1 each).
	sort.Slice(light, func(i, j int) bool { return light[i].Density() > light[j].Density() })
	bins := make([]float64, out.LightCores)
	for _, t := range light {
		placed := false
		for b := range bins {
			if bins[b]+t.Density() <= 1+1e-12 {
				bins[b] += t.Density()
				out.LightAssignment[t.ID] = b
				placed = true
				break
			}
		}
		if !placed {
			out.Reason = fmt.Sprintf("light task %d (density %.3f) does not fit on %d light processors", t.ID, t.Density(), out.LightCores)
			return out
		}
	}
	out.Schedulable = true
	return out
}

// CapacityBound2 is the sufficient test from the capacity-augmentation
// bound 2 of federated scheduling: ΣU ≤ m/2 and L_i ≤ D_i/2 for all i.
func CapacityBound2(s System) bool {
	if s.TotalUtilization() > float64(s.M)/2+1e-12 {
		return false
	}
	for _, t := range s.Tasks {
		if 2*t.Span() > t.Deadline {
			return false
		}
	}
	return true
}

// Hyperperiod returns the LCM of all task periods (capped; an error is
// returned if it exceeds maxHyper, which guards pathological period sets).
func Hyperperiod(s System, maxHyper int64) (int64, error) {
	h := int64(1)
	for _, t := range s.Tasks {
		h = lcm(h, t.Period)
		if h > maxHyper || h < 1 {
			return 0, fmt.Errorf("realtime: hyperperiod exceeds %d", maxHyper)
		}
	}
	return h, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 { return a / gcd(a, b) * b }

// Expand releases every task instance over `horizon` ticks as sim jobs with
// unit profit and the task's relative deadline — the bridge from the
// recurrent model to the throughput simulator. The second return value maps
// each job ID back to its task ID (for partition-aware runtimes).
func Expand(s System, horizon int64) ([]*sim.Job, map[int]int, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	if horizon < 1 {
		return nil, nil, fmt.Errorf("realtime: horizon %d", horizon)
	}
	// Stride must exceed any instance count.
	stride := int64(1)
	for _, t := range s.Tasks {
		if k := horizon/t.Period + 1; k >= stride {
			stride = k + 1
		}
	}
	var jobs []*sim.Job
	taskOf := make(map[int]int)
	for _, t := range s.Tasks {
		inst := int64(0)
		for rel := int64(0); rel < horizon; rel += t.Period {
			fn, err := profit.NewStep(1, t.Deadline)
			if err != nil {
				return nil, nil, err
			}
			id := int(int64(t.ID)*stride + inst)
			jobs = append(jobs, &sim.Job{
				ID:      id,
				Graph:   t.Graph,
				Release: rel,
				Profit:  fn,
			})
			taskOf[id] = t.ID
			inst++
		}
	}
	return jobs, taskOf, nil
}

// AllDeadlinesMet simulates the expanded system under a scheduler and
// reports whether every instance completed by its deadline.
func AllDeadlinesMet(s System, horizon int64, sched sim.Scheduler) (bool, error) {
	jobs, _, err := Expand(s, horizon)
	if err != nil {
		return false, err
	}
	res, err := sim.RunAuto(sim.Config{M: s.M}, jobs, sched)
	if err != nil {
		return false, err
	}
	return res.Completed == len(jobs), nil
}

// PartitionedDeadlinesMet runs the partitioned federated runtime promised
// by the Federated test and reports whether every instance met its
// deadline. The test being sufficient means this must return true for every
// accepted system (property-tested).
func PartitionedDeadlinesMet(s System, horizon int64) (bool, error) {
	alloc := Federated(s)
	if !alloc.Schedulable {
		return false, fmt.Errorf("realtime: system rejected: %s", alloc.Reason)
	}
	jobs, taskOf, err := Expand(s, horizon)
	if err != nil {
		return false, err
	}
	sched, err := NewPartitioned(s, alloc, taskOf)
	if err != nil {
		return false, err
	}
	res, err := sim.RunAuto(sim.Config{M: s.M}, jobs, sched)
	if err != nil {
		return false, err
	}
	return res.Completed == len(jobs), nil
}
