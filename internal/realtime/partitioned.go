package realtime

import (
	"fmt"
	"sort"

	"dagsched/internal/sim"
)

// Partitioned is the runtime the federated test promises a schedule for:
// every heavy task owns its dedicated processors, and light tasks are
// pinned to single light processors (per the test's first-fit partition)
// where each processor runs its own tasks under single-core EDF. It
// implements sim.Scheduler for job sets produced by Expand.
type Partitioned struct {
	sys    System
	alloc  FederatedAllocation
	taskOf map[int]int // job ID → task ID

	m    int
	live map[int]sim.JobView
}

// NewPartitioned builds the runtime from a schedulable allocation and the
// job→task mapping returned by Expand. It returns an error if the
// allocation is not schedulable (there is nothing to run).
func NewPartitioned(sys System, alloc FederatedAllocation, taskOf map[int]int) (*Partitioned, error) {
	if !alloc.Schedulable {
		return nil, fmt.Errorf("realtime: allocation not schedulable: %s", alloc.Reason)
	}
	return &Partitioned{sys: sys, alloc: alloc, taskOf: taskOf}, nil
}

// Name implements sim.Scheduler.
func (p *Partitioned) Name() string { return "rt-partitioned" }

// Init implements sim.Scheduler.
func (p *Partitioned) Init(env sim.Env) {
	p.m = env.M
	p.live = make(map[int]sim.JobView)
}

// OnArrival implements sim.Scheduler.
func (p *Partitioned) OnArrival(t int64, v sim.JobView) { p.live[v.ID] = v }

// OnExpire implements sim.Scheduler.
func (p *Partitioned) OnExpire(t int64, id int) { delete(p.live, id) }

// OnCompletion implements sim.Scheduler.
func (p *Partitioned) OnCompletion(t int64, id int) { delete(p.live, id) }

// Assign implements sim.Scheduler: heavy jobs get their dedicated
// allotment; each light processor runs the earliest-deadline live job among
// the tasks pinned to it.
func (p *Partitioned) Assign(t int64, view sim.AssignView, dst []sim.Alloc) []sim.Alloc {
	// Earliest-deadline live job per light core.
	type pick struct {
		id int
		d  int64
	}
	lightPick := make(map[int]pick)
	// Deterministic iteration: scan jobs by ascending ID.
	ids := make([]int, 0, len(p.live))
	for id := range p.live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		v := p.live[id]
		task, ok := p.taskOf[id]
		if !ok {
			continue
		}
		if cores, heavy := p.alloc.HeavyCores[task]; heavy {
			dst = append(dst, sim.Alloc{JobID: id, Procs: cores})
			continue
		}
		core, ok := p.alloc.LightAssignment[task]
		if !ok {
			continue
		}
		d := v.AbsDeadline()
		if cur, ok := lightPick[core]; !ok || d < cur.d || (d == cur.d && id < cur.id) {
			lightPick[core] = pick{id: id, d: d}
		}
	}
	for core := 0; core < p.alloc.LightCores; core++ {
		if sel, ok := lightPick[core]; ok {
			dst = append(dst, sim.Alloc{JobID: sel.id, Procs: 1})
		}
	}
	return dst
}

var _ sim.Scheduler = (*Partitioned)(nil)
