package realtime

import (
	"encoding/json"
	"math/rand"
	"testing"

	"dagsched/internal/baselines"
	"dagsched/internal/dag"
)

func lightTask(id int, width int, period int64) Task {
	return Task{ID: id, Graph: dag.Block(width, 1), Period: period, Deadline: period}
}

func TestTaskDerivedQuantities(t *testing.T) {
	tk := Task{ID: 1, Graph: dag.Block(8, 2), Period: 10, Deadline: 8}
	if tk.Work() != 16 || tk.Span() != 2 {
		t.Errorf("C=%d L=%d", tk.Work(), tk.Span())
	}
	if tk.Utilization() != 1.6 || tk.Density() != 2.0 {
		t.Errorf("U=%v d=%v", tk.Utilization(), tk.Density())
	}
	if !tk.Heavy() {
		t.Error("C=16 > D=8 should be heavy")
	}
}

func TestValidate(t *testing.T) {
	bad := []Task{
		{ID: 1, Graph: nil, Period: 10, Deadline: 5},
		{ID: 1, Graph: dag.Block(2, 1), Period: 0, Deadline: 1},
		{ID: 1, Graph: dag.Block(2, 1), Period: 5, Deadline: 9}, // D > T
		{ID: 1, Graph: dag.Block(2, 1), Period: 5, Deadline: 0},
	}
	for i, tk := range bad {
		if tk.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	sys := System{M: 0, Tasks: []Task{lightTask(1, 2, 10)}}
	if sys.Validate() == nil {
		t.Error("accepted M=0")
	}
	dup := System{M: 2, Tasks: []Task{lightTask(1, 2, 10), lightTask(1, 2, 10)}}
	if dup.Validate() == nil {
		t.Error("accepted duplicate IDs")
	}
}

func TestFederatedHeavyAllocation(t *testing.T) {
	// Heavy task: C=16, L=2, D=9 → n = ceil(14/7) = 2.
	heavy := Task{ID: 1, Graph: dag.Block(8, 2), Period: 12, Deadline: 9}
	sys := System{M: 4, Tasks: []Task{heavy, lightTask(2, 3, 12)}}
	out := Federated(sys)
	if !out.Schedulable {
		t.Fatalf("rejected: %s", out.Reason)
	}
	if out.HeavyCores[1] != 2 || out.LightCores != 2 {
		t.Errorf("alloc = %+v", out)
	}
}

func TestFederatedRejectsOverload(t *testing.T) {
	heavy := Task{ID: 1, Graph: dag.Block(16, 2), Period: 12, Deadline: 9} // n = ceil(30/7) = 5 > 4
	sys := System{M: 4, Tasks: []Task{heavy}}
	if out := Federated(sys); out.Schedulable {
		t.Error("accepted infeasible heavy task")
	}
}

func TestFederatedRejectsSpanBoundViolation(t *testing.T) {
	chain := Task{ID: 1, Graph: dag.Chain(10, 1), Period: 12, Deadline: 8} // L=10 ≥ D=8, heavy since C=10>8
	sys := System{M: 4, Tasks: []Task{chain}}
	if out := Federated(sys); out.Schedulable {
		t.Error("accepted span-infeasible heavy task")
	}
}

func TestFederatedLightPartition(t *testing.T) {
	// Four light tasks with density 0.5 fit on 2 processors, not on 1.
	tasks := []Task{
		{ID: 1, Graph: dag.Block(5, 1), Period: 10, Deadline: 10},
		{ID: 2, Graph: dag.Block(5, 1), Period: 10, Deadline: 10},
		{ID: 3, Graph: dag.Block(5, 1), Period: 10, Deadline: 10},
		{ID: 4, Graph: dag.Block(5, 1), Period: 10, Deadline: 10},
	}
	if out := Federated(System{M: 2, Tasks: tasks}); !out.Schedulable {
		t.Errorf("rejected 2 procs: %s", out.Reason)
	}
	if out := Federated(System{M: 1, Tasks: tasks}); out.Schedulable {
		t.Error("accepted 1 proc for density 2.0")
	}
}

func TestCapacityBound2(t *testing.T) {
	ok := System{M: 4, Tasks: []Task{
		{ID: 1, Graph: dag.Block(8, 1), Period: 8, Deadline: 8}, // U=1, L=1 ≤ 4
		{ID: 2, Graph: dag.Block(4, 1), Period: 8, Deadline: 6}, // U=0.5
	}}
	if !CapacityBound2(ok) {
		t.Error("rejected system with U=1.5 ≤ 2 and small spans")
	}
	tooMuchU := System{M: 2, Tasks: []Task{
		{ID: 1, Graph: dag.Block(12, 1), Period: 8, Deadline: 8}, // U = 1.5 > 1
	}}
	if CapacityBound2(tooMuchU) {
		t.Error("accepted U > m/2")
	}
	longSpan := System{M: 4, Tasks: []Task{
		{ID: 1, Graph: dag.Chain(6, 1), Period: 12, Deadline: 10}, // L=6 > 5
	}}
	if CapacityBound2(longSpan) {
		t.Error("accepted L > D/2")
	}
}

func TestHyperperiod(t *testing.T) {
	sys := System{M: 2, Tasks: []Task{
		lightTask(1, 2, 4), lightTask(2, 2, 6), lightTask(3, 2, 10),
	}}
	h, err := Hyperperiod(sys, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if h != 60 {
		t.Errorf("hyperperiod = %d, want 60", h)
	}
	if _, err := Hyperperiod(sys, 30); err == nil {
		t.Error("accepted hyperperiod over cap")
	}
}

func TestExpandReleasesAllInstances(t *testing.T) {
	sys := System{M: 2, Tasks: []Task{
		lightTask(1, 2, 5),
		lightTask(2, 3, 10),
	}}
	jobs, taskOf, err := Expand(sys, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(taskOf) != len(jobs) {
		t.Fatalf("taskOf has %d entries for %d jobs", len(taskOf), len(jobs))
	}
	// Task 1: releases 0,5,10,15 → 4; task 2: 0,10 → 2.
	if len(jobs) != 6 {
		t.Fatalf("expanded %d jobs, want 6", len(jobs))
	}
	ids := map[int]bool{}
	for _, j := range jobs {
		if ids[j.ID] {
			t.Fatalf("duplicate job ID %d", j.ID)
		}
		ids[j.ID] = true
	}
}

func TestAllDeadlinesMetEasySystem(t *testing.T) {
	sys := System{M: 4, Tasks: []Task{
		lightTask(1, 4, 10),
		lightTask(2, 4, 10),
	}}
	ok, err := AllDeadlinesMet(sys, 40, &baselines.ListScheduler{Order: baselines.OrderEDF})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("EDF missed deadlines on a trivially feasible system")
	}
}

func TestAllDeadlinesMetOverloadedSystem(t *testing.T) {
	// Utilization 3 on m=2: impossible.
	sys := System{M: 2, Tasks: []Task{
		{ID: 1, Graph: dag.Block(30, 1), Period: 10, Deadline: 10},
		{ID: 2, Graph: dag.Block(30, 1), Period: 10, Deadline: 10},
	}}
	ok, err := AllDeadlinesMet(sys, 40, &baselines.ListScheduler{Order: baselines.OrderEDF})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("overloaded system reported schedulable")
	}
}

// TestFederatedTestIsSafe: on random constrained-deadline systems accepted
// by the federated test, the partitioned runtime the test promises must
// actually meet every deadline in simulation — sufficiency, checked.
func TestFederatedTestIsSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	checked := 0
	for trial := 0; trial < 60 && checked < 12; trial++ {
		var tasks []Task
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			period := int64(8 << rng.Intn(2)) // 8 or 16 → small hyperperiod
			g := dag.Block(1+rng.Intn(6), 1+rng.Int63n(2))
			d := period - rng.Int63n(period/4+1)
			tasks = append(tasks, Task{ID: i, Graph: g, Period: period, Deadline: d})
		}
		sys := System{M: 2 + rng.Intn(3), Tasks: tasks}
		if sys.Validate() != nil {
			continue
		}
		if !Federated(sys).Schedulable {
			continue
		}
		h, err := Hyperperiod(sys, 100000)
		if err != nil {
			continue
		}
		ok, err := PartitionedDeadlinesMet(sys, 2*h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: federated test accepted a system its partitioned runtime misses (sys=%+v)", trial, sys)
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("only %d accepted systems exercised; loosen the generator", checked)
	}
}

func TestPartitionedDeterministic(t *testing.T) {
	sys := System{M: 4, Tasks: []Task{
		{ID: 1, Graph: dag.Block(8, 2), Period: 12, Deadline: 9}, // heavy
		lightTask(2, 3, 12),
		lightTask(3, 2, 6),
	}}
	run := func() (float64, int) {
		ok, err := PartitionedDeadlinesMet(sys, 48)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("accepted system missed deadlines")
		}
		return 0, 0
	}
	run()
	run() // second run must behave identically (no state leakage)
}

func TestPartitionedRejectsUnschedulableAllocation(t *testing.T) {
	sys := System{M: 1, Tasks: []Task{
		{ID: 1, Graph: dag.Block(16, 2), Period: 12, Deadline: 9},
	}}
	if _, err := PartitionedDeadlinesMet(sys, 24); err == nil {
		t.Error("accepted an unschedulable system")
	}
	alloc := Federated(sys)
	if _, err := NewPartitioned(sys, alloc, nil); err == nil {
		t.Error("NewPartitioned accepted a rejected allocation")
	}
}

func TestHeavyTaskMeetsDeadlineOnItsCores(t *testing.T) {
	// A single heavy task on exactly its dedicated cores: the federated
	// formula guarantees (C−L)/n + L ≤ D.
	sys := System{M: 2, Tasks: []Task{
		{ID: 1, Graph: dag.Block(8, 2), Period: 12, Deadline: 9}, // n = 2
	}}
	ok, err := PartitionedDeadlinesMet(sys, 36)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("heavy task missed its deadline on its dedicated allotment")
	}
}

func TestSystemJSONRoundTrip(t *testing.T) {
	orig := System{M: 4, Tasks: []Task{
		{ID: 1, Graph: dag.Block(8, 2), Period: 12, Deadline: 9},
		lightTask(2, 3, 12),
	}}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got System
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.M != orig.M || len(got.Tasks) != len(orig.Tasks) {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range got.Tasks {
		a, b := orig.Tasks[i], got.Tasks[i]
		if a.ID != b.ID || a.Period != b.Period || a.Deadline != b.Deadline ||
			a.Work() != b.Work() || a.Span() != b.Span() {
			t.Fatalf("task %d differs", i)
		}
	}
}

func TestSystemJSONRejectsInvalid(t *testing.T) {
	var s System
	if err := json.Unmarshal([]byte(`{"m":0,"tasks":[]}`), &s); err == nil {
		t.Error("accepted M=0")
	}
	if err := json.Unmarshal([]byte(`{"m":2,"tasks":[{"id":1,"graph":{"work":[1],"edges":[]},"period":5,"deadline":9}]}`), &s); err == nil {
		t.Error("accepted D > T")
	}
}
