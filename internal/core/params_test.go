package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewParamsDefaults(t *testing.T) {
	p, err := NewParams(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Delta != 0.25 {
		t.Errorf("Delta = %v, want eps/4", p.Delta)
	}
	if p.C < 1+1/(p.Delta*p.Epsilon) {
		t.Errorf("C = %v below the paper's floor %v", p.C, 1+1/(p.Delta*p.Epsilon))
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Epsilon: 0, Delta: 0.1, C: 100},
		{Epsilon: -1, Delta: 0.1, C: 100},
		{Epsilon: 1, Delta: 0.5, C: 100},  // delta == eps/2
		{Epsilon: 1, Delta: 0, C: 100},    // delta == 0
		{Epsilon: 1, Delta: 0.25, C: 1.5}, // c below 1+1/(delta·eps) = 5
		{Epsilon: math.Inf(1), Delta: 1, C: 100},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestBDerivation(t *testing.T) {
	p := MustParams(1.0) // delta = 0.25
	want := math.Sqrt(1.5 / 2.0)
	if got := p.B(); math.Abs(got-want) > 1e-12 {
		t.Errorf("B = %v, want %v", got, want)
	}
	if p.B() >= 1 {
		t.Error("b must be < 1")
	}
}

func TestADerivation(t *testing.T) {
	p := MustParams(1.0) // a = 1 + 1.5/0.5 = 4
	if got := p.A(); math.Abs(got-4) > 1e-12 {
		t.Errorf("A = %v, want 4", got)
	}
}

func TestCompetitiveBoundFinitePositive(t *testing.T) {
	for _, eps := range []float64{0.25, 0.5, 1, 2, 4} {
		p := MustParams(eps)
		bound := p.CompetitiveBound()
		if math.IsInf(bound, 0) || bound <= 0 {
			t.Errorf("eps=%v: CompetitiveBound = %v", eps, bound)
		}
	}
}

func TestCompetitiveBoundGrowsAsEpsShrinks(t *testing.T) {
	b1 := MustParams(0.25).CompetitiveBound()
	b2 := MustParams(1.0).CompetitiveBound()
	if b1 <= b2 {
		t.Errorf("bound(eps=0.25)=%v should exceed bound(eps=1)=%v", b1, b2)
	}
}

func TestDeadlineSlackOK(t *testing.T) {
	p := MustParams(1.0)
	// (1+1)((64−8)/8 + 8) = 30
	if !p.DeadlineSlackOK(64, 8, 30, 8) {
		t.Error("rejected exactly-feasible deadline")
	}
	if p.DeadlineSlackOK(64, 8, 29, 8) {
		t.Error("accepted infeasible deadline")
	}
}

func TestPropParamsAlwaysConsistent(t *testing.T) {
	f := func(seed uint16) bool {
		eps := 0.05 + float64(seed%400)/100.0 // [0.05, 4.04]
		p, err := NewParams(eps)
		if err != nil {
			return false
		}
		b := p.B()
		if !(b > 0 && b < 1) {
			return false
		}
		if !(p.A() > 1) {
			return false
		}
		// The Lemma 5 margin must be strictly positive by construction.
		margin := (1-b)/b - 1/((p.C-1)*p.Delta)
		return margin > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMustParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParams(-1) did not panic")
		}
	}()
	MustParams(-1)
}
