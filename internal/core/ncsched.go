package core

import (
	"fmt"
	"math"

	"dagsched/internal/queue"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
)

// SchedulerNC explores the paper's third open question: can a *fully
// non-clairvoyant* scheduler — one that knows a job's release, deadline, and
// profit but neither its total work W nor its span L — approach the
// semi-non-clairvoyant guarantee?
//
// It runs scheduler S's machinery on doubling guesses: each job starts with
// the optimistic guess Ŵ = m (and the balanced-shape assumption L̂ = Ŵ/m),
// from which the allotment, x̂, and density are derived exactly as in S.
// Whenever a job's observed executed work reaches its guess without the job
// completing, the guess doubles and the job is re-admitted under its new
// parameters (possibly parked in P if its band is now full or it is no
// longer fresh). The total work wasted by under-guessing is at most a
// constant factor (the guesses form a geometric series), which is the
// standard non-clairvoyant doubling argument; the open question is whether
// the admission structure survives, and the EXT experiment measures the
// price empirically.
type SchedulerNC struct {
	opts  Options
	m     int
	speed float64

	q    queue.DensityList
	p    queue.DensityList
	band queue.BandIndex
	info map[int]*ncJob

	started   int
	startedPr float64
	regrows   int // total guess doublings

	tel *telemetry.Recorder // nil unless a run recorder is attached
}

// ncJob is NC's per-job bookkeeping under the current guess.
type ncJob struct {
	view   sim.JobView
	guessW float64 // Ŵ

	alloc   int
	x       float64
	weight  float64
	density float64
	profit  float64
	good    bool
	inQ     bool
}

// NewSchedulerNC returns a configured non-clairvoyant scheduler. It panics
// on invalid parameters.
func NewSchedulerNC(opts Options) *SchedulerNC {
	if err := opts.Params.Validate(); err != nil {
		panic(err)
	}
	if opts.NewBand == nil {
		opts.NewBand = func() queue.BandIndex { return queue.NewTreapBand(0x5eed) }
	}
	return &SchedulerNC{opts: opts}
}

// Name implements sim.Scheduler.
func (s *SchedulerNC) Name() string {
	return fmt.Sprintf("paper-NC(eps=%g)", s.opts.Params.Epsilon)
}

// Init implements sim.Scheduler.
func (s *SchedulerNC) Init(env sim.Env) {
	s.m = env.M
	s.speed = env.Speed
	s.q = queue.DensityList{}
	s.p = queue.DensityList{}
	s.band = s.opts.NewBand()
	s.info = make(map[int]*ncJob)
	s.started = 0
	s.startedPr = 0
	s.regrows = 0
}

// SetTelemetry implements telemetry.Instrumentable.
func (s *SchedulerNC) SetTelemetry(rec *telemetry.Recorder) { s.tel = rec }

// Started mirrors SchedulerS.Started.
func (s *SchedulerNC) Started() (count int, totalProfit float64) {
	return s.started, s.startedPr
}

// Regrows returns how many guess doublings occurred — the non-clairvoyance
// overhead counter.
func (s *SchedulerNC) Regrows() int { return s.regrows }

// recompute derives the S parameters from the current guess. The job's true
// W and L are deliberately never read.
func (s *SchedulerNC) recompute(j *ncJob) {
	par := s.opts.Params
	w := j.guessW / s.speed
	l := w / float64(s.m) // balanced-shape assumption
	d := float64(j.view.RelDeadline())
	j.profit = j.view.Profit.At(j.view.RelDeadline())

	denom := d/(1+2*par.Delta) - l
	switch {
	case denom <= 0:
		j.alloc = s.m
		j.x = math.Inf(1)
		j.weight = float64(s.m)
		j.density = 0
		j.good = false
		return
	default:
		a := int(math.Ceil((w - l) / denom))
		if a < 1 {
			a = 1
		}
		if a > s.m {
			a = s.m
		}
		j.alloc = a
	}
	j.x = (w-l)/float64(j.alloc) + l
	j.weight = float64(j.alloc) * j.x * (1 + 2*par.Delta) / d
	j.density = j.profit / (j.x * float64(j.alloc))
	j.good = (1+2*par.Delta)*j.x <= d
}

// bandOK is condition (2) against the current Q (same structure as in S).
func (s *SchedulerNC) bandOK(cand *ncJob) bool {
	par := s.opts.Params
	bm := par.B() * float64(s.m)
	v := cand.density
	if s.band.SumRange(v, par.C*v)+cand.weight > bm {
		return false
	}
	ok := true
	s.q.ForEach(func(it queue.Item) bool {
		if it.Density > v {
			return true
		}
		if it.Density*par.C <= v {
			return false
		}
		if s.band.SumRange(it.Density, par.C*it.Density)+cand.weight > bm {
			ok = false
			return false
		}
		return true
	})
	return ok
}

func (s *SchedulerNC) admit(j *ncJob) {
	it := queue.Item{ID: j.view.ID, Density: j.density, Weight: j.weight}
	s.q.Insert(it)
	s.band.Insert(it)
	if !j.inQ {
		s.started++
		s.startedPr += j.profit
	}
	j.inQ = true
}

func (s *SchedulerNC) dropFromQ(id int) {
	if it, ok := s.q.Get(id); ok {
		s.q.Remove(id)
		s.band.Remove(id, it.Density)
	}
	if j, ok := s.info[id]; ok {
		j.inQ = false
	}
}

// OnArrival implements sim.Scheduler.
func (s *SchedulerNC) OnArrival(t int64, v sim.JobView) {
	j := &ncJob{view: v, guessW: float64(s.m)}
	s.info[v.ID] = j
	s.recompute(j)
	if j.good && s.bandOK(j) {
		s.admit(j)
		if s.tel != nil {
			ev := telemetry.JobEvent(t, telemetry.KindAdmit, v.ID)
			ev.Procs = j.alloc
			ev.Value = j.density
			s.tel.Emit(ev)
		}
		return
	}
	if s.tel != nil {
		ev := telemetry.JobEvent(t, telemetry.KindPark, v.ID)
		if !j.good {
			ev.Why = "not-delta-good"
		} else {
			ev.Why = "band-full"
		}
		s.tel.Emit(ev)
	}
	s.p.Insert(queue.Item{ID: v.ID, Density: j.density, Weight: j.weight})
}

// OnExpire implements sim.Scheduler.
func (s *SchedulerNC) OnExpire(t int64, jobID int) {
	s.dropFromQ(jobID)
	s.p.Remove(jobID)
	delete(s.info, jobID)
}

// OnCompletion implements sim.Scheduler: free the band, then scan P.
func (s *SchedulerNC) OnCompletion(t int64, jobID int) {
	s.dropFromQ(jobID)
	delete(s.info, jobID)
	s.scanP(t + 1)
}

// scanP admits δ-fresh waiting jobs whose bands have room.
func (s *SchedulerNC) scanP(now int64) {
	par := s.opts.Params
	var admitted, stale []int
	s.p.ForEach(func(it queue.Item) bool {
		j := s.info[it.ID]
		if float64(j.view.AbsDeadline()) <= float64(now) {
			stale = append(stale, it.ID)
			return true
		}
		fresh := float64(j.view.AbsDeadline()-now) >= (1+par.Delta)*j.x
		if fresh && s.bandOK(j) {
			s.admit(j)
			admitted = append(admitted, it.ID)
			if s.tel != nil {
				ev := telemetry.JobEvent(now, telemetry.KindReadmit, it.ID)
				ev.Procs = j.alloc
				ev.Value = j.density
				s.tel.Emit(ev)
			}
		}
		return true
	})
	for _, id := range admitted {
		s.p.Remove(id)
	}
	for _, id := range stale {
		s.p.Remove(id)
		delete(s.info, id)
		if s.tel != nil {
			ev := telemetry.JobEvent(now, telemetry.KindAbandon, id)
			ev.Why = "stale"
			s.tel.Emit(ev)
		}
	}
}

// Assign implements sim.Scheduler. Before allocating it settles guesses:
// any running job whose executed work reached its guess without completing
// gets its guess doubled and is re-filed (Q if still fresh and band-feasible,
// else P).
func (s *SchedulerNC) Assign(t int64, view sim.AssignView, dst []sim.Alloc) []sim.Alloc {
	par := s.opts.Params
	// Settle guesses.
	var regrow []int
	s.q.ForEach(func(it queue.Item) bool {
		j := s.info[it.ID]
		if float64(view.ExecutedWork(it.ID)) >= j.guessW {
			regrow = append(regrow, it.ID)
		}
		return true
	})
	for _, id := range regrow {
		j := s.info[id]
		s.dropFromQ(id)
		for j.guessW <= float64(view.ExecutedWork(id)) {
			j.guessW *= 2
		}
		s.regrows++
		s.recompute(j)
		if s.tel != nil {
			ev := telemetry.JobEvent(t, telemetry.KindRegrow, id)
			ev.Value = j.guessW
			s.tel.Emit(ev)
		}
		fresh := float64(j.view.AbsDeadline()-t) >= (1+par.Delta)*j.x
		if j.good && fresh && s.bandOK(j) {
			s.admit(j)
		} else {
			s.p.Insert(queue.Item{ID: id, Density: j.density, Weight: j.weight})
		}
	}
	// Allocate exactly as S does.
	free := s.m
	var expired []int
	s.q.ForEach(func(it queue.Item) bool {
		j := s.info[it.ID]
		if j.view.AbsDeadline() <= t {
			expired = append(expired, it.ID)
			return true
		}
		if free >= j.alloc {
			dst = append(dst, sim.Alloc{JobID: it.ID, Procs: j.alloc})
			free -= j.alloc
		}
		return free > 0
	})
	for _, id := range expired {
		s.dropFromQ(id)
		delete(s.info, id)
		if s.tel != nil {
			ev := telemetry.JobEvent(t, telemetry.KindAbandon, id)
			ev.Why = "past-deadline"
			s.tel.Emit(ev)
		}
	}
	return dst
}

var _ sim.Scheduler = (*SchedulerNC)(nil)
