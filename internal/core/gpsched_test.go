package core

import (
	"math"
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/profit"
	"dagsched/internal/sim"
)

func newGP(t *testing.T, eps float64) *SchedulerGP {
	t.Helper()
	return NewSchedulerGP(Options{Params: MustParams(eps)})
}

func pw(t *testing.T, until []int64, values []float64) profit.Fn {
	t.Helper()
	p, err := profit.NewPiecewiseConstant(until, values)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGPSingleStepJobAssignedMinimalDeadline(t *testing.T) {
	// Block(8,2): W=16, L=2, m=4, eps=1, delta=0.25. Step(5, 30):
	// x* = 30 → n = 14/(20−2) = 0.78 → alloc 1, x = 16,
	// need = ceil(1.25·16) = 20 slots, all free → D = 20.
	j := &sim.Job{ID: 1, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 5, 30)}
	s := newGP(t, 1.0)
	res, err := sim.Run(sim.Config{M: 4}, []*sim.Job{j}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.TotalProfit != 5 {
		t.Fatalf("completed=%d profit=%v", res.Completed, res.TotalProfit)
	}
	if res.Jobs[0].Latency > 20 {
		t.Errorf("latency %d exceeds assigned deadline 20", res.Jobs[0].Latency)
	}
}

func TestGPDeadlineSearchSkipsOccupiedSlots(t *testing.T) {
	// Block(19,2): W=38, L=2, flat prefix x*=21 → n = 36/(14−2) = 3,
	// alloc 3, x = 14, band weight 3·14·1.5/21 = 3.0 > b·m/2, so the two
	// jobs cannot share any time step. Job 1 takes slots 0..17 (need =
	// ceil(1.25·14) = 18) → D = 18, value 5. Job 2 is pushed to slots
	// 18..35 → D = 36, landing in the value-4 piece; it runs 18..31 and
	// completes at 32.
	fn := func() profit.Fn { return pw(t, []int64{21, 40}, []float64{5, 4}) }
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Block(19, 2), Release: 0, Profit: fn()},
		{ID: 2, Graph: dag.Block(19, 2), Release: 0, Profit: fn()},
	}
	s := newGP(t, 1.0)
	res, err := sim.Run(sim.Config{M: 4}, jobs, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed = %d, want 2 (stats %+v)", res.Completed, res.Jobs)
	}
	if res.TotalProfit != 9 {
		t.Errorf("profit = %v, want 5 + 4 = 9 (stats %+v)", res.TotalProfit, res.Jobs)
	}
	for _, js := range res.Jobs {
		if js.ID == 2 && js.CompletedAt != 32 {
			t.Errorf("job 2 completed at %d, want 32 (slots 18..31)", js.CompletedAt)
		}
	}
}

func TestGPAssignedDeadlineQuery(t *testing.T) {
	s := newGP(t, 1.0)
	s.Init(sim.Env{M: 4, Speed: 1})
	v := sim.JobView{ID: 7, Release: 0, W: 16, L: 2, Profit: stepFn(t, 5, 30)}
	s.OnArrival(0, v)
	d, ok := s.AssignedDeadline(7)
	if !ok || d != 20 {
		t.Errorf("AssignedDeadline = %d, %v; want 20, true", d, ok)
	}
	if n, pr := s.Assigned(); n != 1 || pr != 5 {
		t.Errorf("Assigned = %d, %v", n, pr)
	}
	if _, ok := s.AssignedDeadline(99); ok {
		t.Error("AssignedDeadline found phantom job")
	}
}

func TestGPLemma14XBound(t *testing.T) {
	// x(1+2δ) ≤ x* for assigned jobs.
	rng := rand.New(rand.NewSource(8))
	eps := 1.0
	par := MustParams(eps)
	m := 8
	s := NewSchedulerGP(Options{Params: par})
	s.Init(sim.Env{M: m, Speed: 1})
	for i := 0; i < 200; i++ {
		w := 2 + rng.Int63n(300)
		l := 1 + rng.Int63n(w)
		xStarMin := (1 + eps) * (float64(w-l)/float64(m) + float64(l))
		xStar := int64(math.Ceil(xStarMin)) + rng.Int63n(40)
		v := sim.JobView{ID: i, Release: 0, W: w, L: l,
			Profit: pw(t, []int64{xStar, xStar + 100}, []float64{10, 5})}
		s.OnArrival(0, v)
		j := s.jobs[i]
		if j.deadln == 0 {
			continue // band-congested; fine
		}
		if j.x*(1+2*par.Delta) > float64(xStar)+1e-9 {
			t.Fatalf("W=%d L=%d x*=%d: x(1+2δ) = %v > x*", w, l, xStar, j.x*(1+2*par.Delta))
		}
	}
}

func TestGPUnschedulableTightFlatPrefix(t *testing.T) {
	// x* barely above L violates the δ margin: x*/(1+2δ) − L ≤ 0 → no
	// assignment, job expires with zero profit.
	s := newGP(t, 1.0)
	j := &sim.Job{ID: 1, Graph: dag.Block(8, 2), Release: 0,
		Profit: pw(t, []int64{2, 50}, []float64{5, 4})} // x* = 2 = L
	res, err := sim.Run(sim.Config{M: 4}, []*sim.Job{j}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Errorf("unschedulable job completed (%+v)", res.Jobs)
	}
}

func TestGPLinearDecayEarnsDecayedProfit(t *testing.T) {
	// Linear decay: flat 20 at peak 10, zero at 60. Uncontended job gets a
	// minimal deadline near ceil(1.25·x) and earns close to peak.
	lin, err := profit.NewLinearDecay(10, 20, 60)
	if err != nil {
		t.Fatal(err)
	}
	j := &sim.Job{ID: 1, Graph: dag.Block(8, 2), Release: 0, Profit: lin}
	s := newGP(t, 1.0)
	res, err := sim.Run(sim.Config{M: 4}, []*sim.Job{j}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatal("job did not complete")
	}
	if res.TotalProfit < 9 {
		t.Errorf("profit = %v, want near peak 10 (flat prefix covers the assignment)", res.TotalProfit)
	}
}

// gpChecker verifies Lemma 15 slot invariants after every event.
type gpChecker struct {
	*SchedulerGP
	t *testing.T
}

func (c *gpChecker) check() {
	c.t.Helper()
	if err := c.SchedulerGP.CheckSlotInvariants(); err != nil {
		c.t.Fatal(err)
	}
}

func (c *gpChecker) OnArrival(t int64, v sim.JobView) {
	c.SchedulerGP.OnArrival(t, v)
	c.check()
}

func (c *gpChecker) OnCompletion(t int64, id int) {
	c.SchedulerGP.OnCompletion(t, id)
	c.check()
}

func (c *gpChecker) OnExpire(t int64, id int) {
	c.SchedulerGP.OnExpire(t, id)
	c.check()
}

func TestGPLemma15SlotInvariantUnderLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := 8
	var jobs []*sim.Job
	clock := int64(0)
	for i := 0; i < 40; i++ {
		g := dag.Layered(rng, 1+rng.Intn(4), 1+rng.Intn(5), 1+rng.Int63n(3), 0.5)
		w, l := g.TotalWork(), g.Span()
		xStarMin := 2 * (float64(w-l)/float64(m) + float64(l))
		xStar := int64(math.Ceil(xStarMin)) + rng.Int63n(20)
		fn, err := profit.NewLinearDecay(1+float64(rng.Intn(10)), xStar, xStar+60)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, &sim.Job{ID: i, Graph: g, Release: clock, Profit: fn})
		clock += rng.Int63n(4)
	}
	c := &gpChecker{SchedulerGP: newGP(t, 1.0), t: t}
	res, err := sim.Run(sim.Config{M: m}, jobs, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Error("GP completed nothing under load")
	}
}

func TestGPCompletionFreesFutureSlots(t *testing.T) {
	// The Block(19,2) blocker claims slots 0..17 but finishes at t=14; its
	// claim on 14..17 is released during tick 13's completion handling. A
	// second job arriving at t=14 can therefore claim slots 14..31
	// (D = 18, value 5) instead of starting behind the stale claim at 18
	// (D = 22, value 4).
	fn := func() profit.Fn { return pw(t, []int64{21, 40}, []float64{5, 4}) }
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Block(19, 2), Release: 0, Profit: fn()},
		{ID: 2, Graph: dag.Block(19, 2), Release: 14, Profit: fn()},
	}
	s := newGP(t, 1.0)
	res, err := sim.Run(sim.Config{M: 4}, jobs, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed = %d (stats %+v)", res.Completed, res.Jobs)
	}
	for _, js := range res.Jobs {
		if js.ID == 2 {
			if js.CompletedAt != 28 {
				t.Errorf("job 2 completed at %d, want 28 (slots 14..27 free after job 1 finished)", js.CompletedAt)
			}
			if js.Profit != 5 {
				t.Errorf("job 2 profit = %v, want 5 (D=18 within flat prefix)", js.Profit)
			}
		}
	}
}

func TestGPNamePanicsAndBasics(t *testing.T) {
	s := newGP(t, 0.5)
	if s.Name() != "paper-GP(eps=0.5)" {
		t.Errorf("Name = %q", s.Name())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad params")
		}
	}()
	NewSchedulerGP(Options{Params: Params{Epsilon: 0}})
}

func newGPWC(t *testing.T, eps float64) *SchedulerGP {
	t.Helper()
	return NewSchedulerGP(Options{Params: MustParams(eps), WorkConserving: true})
}

func TestGPWCNameSuffix(t *testing.T) {
	if got := newGPWC(t, 1).Name(); got != "paper-GP(eps=1)+wc" {
		t.Errorf("Name = %q", got)
	}
}

func TestGPWCFloodsIdleProcessors(t *testing.T) {
	// A single wide job with a generous flat prefix: plain GP grants only
	// its allotment; GP+wc floods the machine and finishes much earlier.
	mk := func() []*sim.Job {
		return []*sim.Job{{ID: 1, Graph: dag.Block(32, 1), Release: 0, Profit: stepFn(t, 5, 200)}}
	}
	plain, err := sim.Run(sim.Config{M: 8}, mk(), newGP(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	wc, err := sim.Run(sim.Config{M: 8}, mk(), newGPWC(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if wc.Jobs[0].CompletedAt != 4 {
		t.Errorf("GP+wc completed at %d, want 4", wc.Jobs[0].CompletedAt)
	}
	if wc.Jobs[0].CompletedAt >= plain.Jobs[0].CompletedAt {
		t.Errorf("GP+wc (%d) not faster than GP (%d)", wc.Jobs[0].CompletedAt, plain.Jobs[0].CompletedAt)
	}
}

func TestGPWCRunsOutsideSlotsWhenIdle(t *testing.T) {
	// Two heavy jobs whose slot sets are disjoint: plain GP leaves job 2
	// idle during job 1's window even when processors are free; GP+wc runs
	// both. Total profit must not decrease.
	fn := func() profit.Fn { return pw(t, []int64{21, 40}, []float64{5, 4}) }
	mk := func() []*sim.Job {
		return []*sim.Job{
			{ID: 1, Graph: dag.Block(19, 2), Release: 0, Profit: fn()},
			{ID: 2, Graph: dag.Block(19, 2), Release: 0, Profit: fn()},
		}
	}
	plain, err := sim.Run(sim.Config{M: 4}, mk(), newGP(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	wc, err := sim.Run(sim.Config{M: 4}, mk(), newGPWC(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if wc.TotalProfit <= plain.TotalProfit {
		t.Errorf("GP+wc profit %v not above GP %v (early progress should land job 2 in the value-5 piece)",
			wc.TotalProfit, plain.TotalProfit)
	}
	at := func(res *sim.Result, id int) int64 {
		for _, js := range res.Jobs {
			if js.ID == id {
				return js.CompletedAt
			}
		}
		return 0
	}
	if at(wc, 2) >= at(plain, 2) {
		t.Errorf("GP+wc job 2 at %d, plain at %d: no speedup", at(wc, 2), at(plain, 2))
	}
}

func TestSegmentEndMatchesLinearScan(t *testing.T) {
	// segmentEnd (galloping + binary search) must agree with a brute-force
	// scan on every profit family and every starting point.
	s := newGP(t, 1.0)
	s.Init(sim.Env{M: 4, Speed: 1})
	lin, err := profit.NewLinearDecay(9, 7, 25)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := profit.NewExpDecay(16, 5, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	fns := []profit.Fn{
		stepFn(t, 5, 12),
		lin,
		exp,
		pw(t, []int64{4, 9, 20}, []float64{6, 6, 2}),
	}
	for _, fn := range fns {
		v := sim.JobView{ID: 1, W: 10, L: 2, Profit: fn}
		maxD := fn.SupportEnd() - 1
		for start := int64(1); start <= maxD; start++ {
			val := fn.At(start)
			got := s.segmentEnd(v, start, maxD, val)
			want := start
			for want < maxD && fn.At(want+1) == val {
				want++
			}
			if got != want {
				t.Fatalf("%s: segmentEnd(start=%d) = %d, want %d", fn.Name(), start, got, want)
			}
		}
	}
}

func TestGPAssignedSlotsAreWithinWindowAndSorted(t *testing.T) {
	s := newGP(t, 1.0)
	s.Init(sim.Env{M: 4, Speed: 1})
	for i := 0; i < 10; i++ {
		v := sim.JobView{ID: i, Release: int64(i * 3), W: 16, L: 2, Profit: stepFn(t, 5, 40)}
		s.OnArrival(v.Release, v)
		j := s.jobs[i]
		if j.deadln == 0 {
			continue
		}
		prev := int64(-1)
		for _, slot := range j.slots {
			if slot <= prev {
				t.Fatalf("job %d slots not strictly increasing: %v", i, j.slots)
			}
			prev = slot
			if slot < v.Release || slot >= v.Release+j.deadln {
				t.Fatalf("job %d slot %d outside window [%d, %d)", i, slot, v.Release, v.Release+j.deadln)
			}
		}
	}
}

func TestGPExactSearchFindsMinimalDeadline(t *testing.T) {
	// Linear decay changes value every tick, so the geometric skip may
	// overshoot the minimal valid deadline once slots are congested; the
	// exact search must never assign a later deadline than the geometric
	// one, and both must agree on step profits.
	lin := func() profit.Fn {
		fn, err := profit.NewLinearDecay(10, 30, 120)
		if err != nil {
			t.Fatal(err)
		}
		return fn
	}
	mkJobs := func() []*sim.Job {
		var jobs []*sim.Job
		for i := 0; i < 6; i++ {
			jobs = append(jobs, &sim.Job{ID: i, Graph: dag.Block(19, 2), Release: 0, Profit: lin()})
		}
		return jobs
	}
	geo := NewSchedulerGP(Options{Params: MustParams(1)})
	exact := NewSchedulerGP(Options{Params: MustParams(1), ExactSearch: true})
	resGeo, err := sim.Run(sim.Config{M: 4}, mkJobs(), geo)
	if err != nil {
		t.Fatal(err)
	}
	resExact, err := sim.Run(sim.Config{M: 4}, mkJobs(), exact)
	if err != nil {
		t.Fatal(err)
	}
	if resExact.TotalProfit < resGeo.TotalProfit-1e-9 {
		t.Errorf("exact search earned %v < geometric %v", resExact.TotalProfit, resGeo.TotalProfit)
	}

	// On step profits the two must behave identically (single segment).
	stepJobs := func() []*sim.Job {
		var jobs []*sim.Job
		for i := 0; i < 4; i++ {
			jobs = append(jobs, &sim.Job{ID: i, Graph: dag.Block(8, 2), Release: int64(2 * i), Profit: stepFn(t, 5, 40)})
		}
		return jobs
	}
	a, err := sim.Run(sim.Config{M: 4}, stepJobs(), NewSchedulerGP(Options{Params: MustParams(1)}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(sim.Config{M: 4}, stepJobs(), NewSchedulerGP(Options{Params: MustParams(1), ExactSearch: true}))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalProfit != b.TotalProfit || a.Completed != b.Completed {
		t.Errorf("step profits: geometric (%v,%d) vs exact (%v,%d)",
			a.TotalProfit, a.Completed, b.TotalProfit, b.Completed)
	}
}
