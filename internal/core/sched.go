package core

import (
	"fmt"
	"math"
	"sort"

	"dagsched/internal/queue"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
)

// Ablation selects deliberately-weakened variants of scheduler S for the
// ablation experiments; AblationNone is the paper's algorithm.
type Ablation int

const (
	// AblationNone runs the paper's algorithm unmodified.
	AblationNone Ablation = iota
	// AblationNoBandCheck admits every δ-good job to Q immediately,
	// removing condition (2). This voids the Observation 3 invariant that
	// the whole analysis rests on; empirically (ABL1) it trades the
	// worst-case guarantee for extra profit on stochastic workloads, since
	// density-ordered execution self-limits dilution there.
	AblationNoBandCheck
	// AblationNoFreshness admits jobs from P without the δ-fresh test,
	// spending processor steps on jobs that can no longer finish (ABL3).
	AblationNoFreshness
	// AblationAllotOne forces n_i = 1 regardless of the formula (ABL2).
	AblationAllotOne
	// AblationAllotAll forces n_i = m regardless of the formula (ABL2).
	AblationAllotAll
)

// String names the ablation for reports.
func (a Ablation) String() string {
	switch a {
	case AblationNone:
		return "none"
	case AblationNoBandCheck:
		return "no-band-check"
	case AblationNoFreshness:
		return "no-freshness"
	case AblationAllotOne:
		return "allot-1"
	case AblationAllotAll:
		return "allot-m"
	default:
		return fmt.Sprintf("ablation(%d)", int(a))
	}
}

// Options configures a SchedulerS instance.
type Options struct {
	// Params are the ε-derived constants; required.
	Params Params
	// NewBand constructs the band index used for condition (2). Nil means
	// queue.NewTreapBand with a fixed seed.
	NewBand func() queue.BandIndex
	// Ablation optionally weakens the algorithm for ablation studies.
	Ablation Ablation
	// WorkConserving enables the paper's "future work" extension: after the
	// paper's allocation pass, leftover processors are distributed to
	// admitted jobs in density order, up to each job's ready-node count.
	// Admission (δ-good, δ-fresh, condition (2)) is unchanged, so the
	// worst-case analysis is unaffected — extra processors only ever add
	// progress.
	WorkConserving bool
	// ExactSearch makes SchedulerGP scan every candidate deadline as the
	// paper specifies, instead of advancing geometrically after a failed
	// constant-value segment. Exact on any profit family; Θ(horizon²) worst
	// case on continuously-decaying profits.
	ExactSearch bool
	// Commitment is the scheduler-wide commitment policy, overridable per job
	// through sim.Job.Commitment. Under a binding policy (delta, on-arrival)
	// an admitted job is promised completion: it is never abandoned past its
	// commit point, keeps its band weight and allotment until it finishes —
	// even past its deadline, for zero profit — and, under on-arrival, a job
	// that cannot be admitted at release is refused outright instead of
	// parked (the admission verdict is final). The zero value (or
	// sim.CommitmentNone / sim.CommitmentOnAdmission) keeps the paper's
	// semantics: admission is best-effort and overdue jobs are abandoned.
	Commitment sim.Commitment
	// Resilient makes S react to fault-injection feedback (sim.CapacityAware).
	// Planning (allotments, admission) stays against the nominal m — crashes
	// are transient, so a job's lifetime-average capacity is still ≈ m — but
	// each tick's allocation budget follows the announced capacity and is
	// re-partitioned (partial grants) while degraded, jobs whose lost work
	// provably cannot be re-executed before their deadline are expired from Q
	// early with their band refilled from P, and capacity recoveries trigger
	// re-admission from P. Without faults the callbacks never fire beyond the
	// initial capacity, so behavior is identical to the plain scheduler.
	Resilient bool
}

// jobInfo is S's per-job bookkeeping, computed once on arrival (Remark in
// Section 3.1: the allotment is deliberately fixed at arrival).
type jobInfo struct {
	view sim.JobView

	alloc   int     // A_i = min(m, max(1, ceil(n_i))): processors granted when run
	nReal   float64 // the paper's real-valued n_i (for diagnostics)
	x       float64 // x_i = (W_eff−L_eff)/A_i + L_eff in ticks
	weight  float64 // band weight: A_i·x_i·(1+2δ)/D_i = the paper's n_i when exact
	density float64 // v_i = p_i / (x_i·A_i)
	profit  float64 // p_i = profit if completed by the deadline
	good    bool    // δ-good: (1+2δ)·x_i ≤ D_i

	// committed: the scheduler has promised this job completion (set at the
	// commit point of a binding commitment level); it may no longer be
	// abandoned, not even past its deadline.
	committed bool
}

// SchedulerS is the paper's Section 3 algorithm for jobs with deadlines and
// profits. It implements sim.Scheduler.
type SchedulerS struct {
	opts  Options
	m     int
	speed float64

	q    *queue.DensityTreap // started jobs, density-descending
	p    *queue.DensityTreap // waiting jobs, density-descending
	band queue.BandIndex     // allotments of Q by density
	info map[int]*jobInfo

	admitBuf, staleBuf []int // admitFromP scratch, reused across calls
	expiredBuf         []int // Assign scratch, reused across ticks

	started   int     // |R|: jobs ever admitted to Q
	startedPr float64 // ||R||: their total profit

	mEff int          // announced capacity (= m unless Resilient under faults)
	lost map[int]bool // jobs with discarded work awaiting a slack re-check

	tel *telemetry.Recorder // nil unless a run recorder is attached
}

// NewSchedulerS returns a configured scheduler S. It panics on invalid
// parameters (programmer error).
func NewSchedulerS(opts Options) *SchedulerS {
	if err := opts.Params.Validate(); err != nil {
		panic(err)
	}
	if !opts.Commitment.Valid() {
		panic(fmt.Errorf("core: unknown commitment policy %q", opts.Commitment))
	}
	if opts.NewBand == nil {
		opts.NewBand = func() queue.BandIndex { return queue.NewTreapBand(0x5eed) }
	}
	return &SchedulerS{opts: opts}
}

// Name implements sim.Scheduler.
func (s *SchedulerS) Name() string {
	n := fmt.Sprintf("paper-S(eps=%g)", s.opts.Params.Epsilon)
	if s.opts.Ablation != AblationNone {
		n += "/" + s.opts.Ablation.String()
	}
	if s.opts.WorkConserving {
		n += "+wc"
	}
	if s.opts.Resilient {
		n += "+res"
	}
	if s.opts.Commitment.Binding() {
		n += "+commit=" + string(s.opts.Commitment)
	}
	return n
}

// SetCommitment replaces the scheduler-wide commitment policy. The serving
// tier calls it between construction and the first arrival (cliflags
// factories predate the policy knob); changing it mid-run would re-interpret
// promises already made, so callers set it before Init-time use.
func (s *SchedulerS) SetCommitment(c sim.Commitment) error {
	if !c.Valid() {
		return fmt.Errorf("core: unknown commitment policy %q", c)
	}
	s.opts.Commitment = c
	return nil
}

// Commitment returns the scheduler-wide commitment policy.
func (s *SchedulerS) Commitment() sim.Commitment { return s.opts.Commitment }

// commitmentOf resolves a job's effective commitment level: its own request,
// or the scheduler-wide policy when the job defers.
func (s *SchedulerS) commitmentOf(v sim.JobView) sim.Commitment {
	return v.Commitment.Resolve(s.opts.Commitment)
}

// Committed implements sim.Committer: whether S has promised the job
// completion. The engine consults it before expiring an overdue job.
func (s *SchedulerS) Committed(jobID int) bool {
	info, ok := s.info[jobID]
	return ok && info.committed
}

// EventSafe implements sim.EventSafe: every decision S takes — admission on
// arrival, refill from P on completion, expiry on deadline, density-ordered
// allocation — is driven by events, never by the clock or executed work
// between events. This holds for every ablation and for the work-conserving
// extension (ReadyCount is interval-stable); the Resilient callbacks fire
// only under fault injection, which RunAuto already routes to the tick
// engine.
func (s *SchedulerS) EventSafe() bool { return true }

// Init implements sim.Scheduler.
func (s *SchedulerS) Init(env sim.Env) {
	s.m = env.M
	s.speed = env.Speed
	s.q = queue.NewDensityTreap(0x51eed0)
	s.p = queue.NewDensityTreap(0x51eed1)
	s.band = s.opts.NewBand()
	s.info = make(map[int]*jobInfo)
	s.started = 0
	s.startedPr = 0
	s.mEff = env.M
	s.lost = nil
}

// SetTelemetry implements telemetry.Instrumentable: decision events (admit,
// park, readmit, abandon) are emitted into rec for the next runs. Nil
// detaches.
func (s *SchedulerS) SetTelemetry(rec *telemetry.Recorder) { s.tel = rec }

// Started returns |R| and ||R||: how many jobs S ever admitted to Q and
// their total profit. The analysis bounds both ||C|| and ||OPT|| against
// ||R||; experiments report it.
func (s *SchedulerS) Started() (count int, totalProfit float64) {
	return s.started, s.startedPr
}

// computeInfo evaluates the arrival-time formulas of Section 3.1 for a job.
// All times are "effective ticks": work and span divided by the machine
// speed, so the same code serves speed-augmented runs.
func (s *SchedulerS) computeInfo(v sim.JobView) *jobInfo {
	par := s.opts.Params
	w := float64(v.W) / s.speed
	l := float64(v.L) / s.speed
	d := float64(v.RelDeadline())
	profitVal := v.Profit.At(v.RelDeadline())

	info := &jobInfo{view: v, profit: profitVal}

	denom := d/(1+2*par.Delta) - l
	switch {
	case w == l: // pure chain: one processor suffices, x = L
		info.nReal = 0
		info.alloc = 1
	case denom <= 0: // cannot be δ-good at any allotment
		info.nReal = math.Inf(1)
		info.alloc = s.m
	default:
		info.nReal = (w - l) / denom
		a := int(math.Ceil(info.nReal))
		if a < 1 {
			a = 1
		}
		if a > s.m {
			a = s.m
		}
		info.alloc = a
	}
	switch s.opts.Ablation {
	case AblationAllotOne:
		info.alloc = 1
	case AblationAllotAll:
		info.alloc = s.m
	}
	info.x = (w-l)/float64(info.alloc) + l
	den := info.x * float64(info.alloc)
	if den > 0 {
		info.density = info.profit / den
	}
	// Band weight: the job's time-averaged processor demand within its
	// scheduling window, A_i·x_i/(D_i/(1+2δ)). With the paper's exact
	// real-valued n_i this is n_i itself (x_i·n_i spread over the window);
	// rounding A_i up shrinks x_i by the same factor, so the product stays
	// faithful — unlike summing integral A_i, which over-counts jobs whose
	// n_i < 1 and starves admission.
	if d > 0 && !math.IsInf(info.x, 1) {
		info.weight = float64(info.alloc) * info.x * (1 + 2*par.Delta) / d
	} else {
		info.weight = float64(info.alloc)
	}
	info.good = (1+2*par.Delta)*info.x <= d && !math.IsInf(info.x, 1)
	return info
}

// Plan describes the arrival-time decisions S would take for a job: its
// allotment, maximum execution time, density, and δ-goodness. It is exposed
// for experiments, examples, and tests; Init must have been called.
type Plan struct {
	Alloc   int     // A_i: processors granted when the job runs
	NReal   float64 // the paper's real-valued n_i
	X       float64 // x_i in ticks
	Weight  float64 // band weight (time-averaged processor demand)
	Density float64 // v_i
	Good    bool    // δ-good
	Profit  float64 // p_i
}

// Plan returns the arrival-time plan for a job view.
func (s *SchedulerS) Plan(v sim.JobView) Plan {
	info := s.computeInfo(v)
	return Plan{
		Alloc:   info.alloc,
		NReal:   info.nReal,
		X:       info.x,
		Weight:  info.weight,
		Density: info.density,
		Good:    info.good,
		Profit:  info.profit,
	}
}

// Decision is the outcome of a standalone admission query: the arrival-time
// Plan plus whether S would start the job now and, when it would not, why.
type Decision struct {
	Plan   Plan
	Admit  bool
	Reason string // "" when admitted; "not-delta-good" or "band-full" otherwise
}

// Admission reports the decision OnArrival would take for a job view at this
// instant, without taking it: δ-goodness, condition (2) against the current
// band occupancy, and the arrival-time plan. It reads but never mutates the
// queues, so a serving front end can answer an admit/reject query before
// committing the arrival to the engine. Init must have been called.
func (s *SchedulerS) Admission(v sim.JobView) Decision {
	info := s.computeInfo(v)
	d := Decision{Plan: Plan{
		Alloc:   info.alloc,
		NReal:   info.nReal,
		X:       info.x,
		Weight:  info.weight,
		Density: info.density,
		Good:    info.good,
		Profit:  info.profit,
	}}
	switch {
	case info.good && (s.opts.Ablation == AblationNoBandCheck || s.bandOK(info)):
		d.Admit = true
	case !info.good:
		d.Reason = "not-delta-good"
	default:
		d.Reason = "band-full"
	}
	return d
}

// bandOK checks condition (2) for admitting cand into Q: for every job J_j
// in Q∪{cand}, the total allotment with density in [v_j, c·v_j) must stay
// ≤ b·m. Only bands containing cand's density can change, so it suffices to
// check cand's own band plus the bands of queued jobs J_j with
// v_j ∈ (v_cand/c, v_cand]. ForEachFrom lands on the first such job in
// O(log n) — the denser prefix, whose bands cannot contain v, is skipped
// structurally — and each band sum is an O(log n) treap query, so the whole
// check costs O(k log n) for the k jobs inside one multiplicative band.
func (s *SchedulerS) bandOK(cand *jobInfo) bool {
	par := s.opts.Params
	bm := par.B() * float64(s.m)
	v := cand.density
	add := cand.weight

	if s.band.SumRange(v, par.C*v)+add > bm {
		return false
	}
	ok := true
	s.q.ForEachFrom(v, func(it queue.Item) bool {
		if it.Density*par.C <= v {
			return false // from here on all bands end below v
		}
		extra := 0.0
		if v >= it.Density && v < it.Density*par.C {
			extra = add
		}
		if s.band.SumRange(it.Density, par.C*it.Density)+extra > bm {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// admit moves a job into Q (it is "started"). Admission to Q is the commit
// point of every binding commitment level: on-arrival jobs are only ever
// admitted here at release (refusal is final, see OnArrival), and δ-commitment
// commits when the job starts — whether at arrival or later from P, where
// δ-freshness guarantees a (1+δ)x window remains.
func (s *SchedulerS) admit(info *jobInfo) {
	info.committed = s.commitmentOf(info.view).Binding()
	it := queue.Item{ID: info.view.ID, Density: info.density, Weight: info.weight}
	s.q.Insert(it)
	s.band.Insert(it)
	s.started++
	s.startedPr += info.profit
}

// dropFromQ removes a job from Q and the band index if present.
func (s *SchedulerS) dropFromQ(id int) {
	if it, ok := s.q.Get(id); ok {
		s.q.Remove(id)
		s.band.Remove(id, it.Density)
	}
}

// OnArrival implements sim.Scheduler: compute the allotment, then admit to Q
// if the job is δ-good and condition (2) holds, else park in P.
func (s *SchedulerS) OnArrival(t int64, v sim.JobView) {
	info := s.computeInfo(v)
	s.info[v.ID] = info
	if info.good && (s.opts.Ablation == AblationNoBandCheck || s.bandOK(info)) {
		s.admit(info)
		if s.tel != nil {
			ev := telemetry.JobEvent(t, telemetry.KindAdmit, v.ID)
			ev.Procs = info.alloc
			ev.Value = info.density
			s.tel.Emit(ev)
		}
		return
	}
	if s.commitmentOf(v) == sim.CommitmentOnArrival {
		// On-arrival commitment makes the release-time verdict final: a job
		// that cannot be admitted now is refused outright, never parked —
		// P's second chance would turn the refusal into a "maybe later",
		// which is exactly what this level promises not to say.
		delete(s.info, v.ID)
		if s.tel != nil {
			ev := telemetry.JobEvent(t, telemetry.KindAbandon, v.ID)
			ev.Why = "commitment-refused"
			s.tel.Emit(ev)
		}
		return
	}
	if s.tel != nil {
		ev := telemetry.JobEvent(t, telemetry.KindPark, v.ID)
		if !info.good {
			ev.Why = "not-delta-good"
		} else {
			ev.Why = "band-full"
		}
		s.tel.Emit(ev)
	}
	s.p.Insert(queue.Item{ID: v.ID, Density: info.density, Weight: info.weight})
}

// OnExpire implements sim.Scheduler.
func (s *SchedulerS) OnExpire(t int64, jobID int) {
	s.dropFromQ(jobID)
	s.p.Remove(jobID)
	delete(s.info, jobID)
}

// OnCompletion implements sim.Scheduler: free the finished job's band, then
// refill Q from P. The completion takes effect for the next tick.
func (s *SchedulerS) OnCompletion(t int64, jobID int) {
	s.dropFromQ(jobID)
	delete(s.info, jobID)
	s.admitFromP(t + 1)
}

// admitFromP scans P from highest to lowest density, admitting every job
// that is δ-fresh and passes condition (2) at time now. Jobs past their
// deadline are discarded.
func (s *SchedulerS) admitFromP(now int64) {
	par := s.opts.Params
	admitted, stale := s.admitBuf[:0], s.staleBuf[:0]
	s.p.ForEach(func(it queue.Item) bool {
		info := s.info[it.ID]
		if float64(info.view.AbsDeadline()) <= float64(now) {
			stale = append(stale, it.ID)
			return true
		}
		fresh := float64(info.view.AbsDeadline()-now) >= (1+par.Delta)*info.x
		if s.opts.Ablation == AblationNoFreshness {
			fresh = info.good
		}
		if fresh && s.bandOK(info) {
			s.admit(info)
			admitted = append(admitted, it.ID)
			if s.tel != nil {
				ev := telemetry.JobEvent(now, telemetry.KindReadmit, it.ID)
				ev.Procs = info.alloc
				ev.Value = info.density
				s.tel.Emit(ev)
			}
		}
		return true
	})
	for _, id := range admitted {
		s.p.Remove(id)
	}
	for _, id := range stale {
		s.p.Remove(id)
		delete(s.info, id)
		if s.tel != nil {
			ev := telemetry.JobEvent(now, telemetry.KindAbandon, id)
			ev.Why = "stale"
			s.tel.Emit(ev)
		}
	}
	s.admitBuf, s.staleBuf = admitted[:0], stale[:0]
}

// OnCapacityChange implements sim.CapacityAware. Under Options.Resilient the
// announced capacity becomes the next ticks' allocation budget; a recovery
// additionally re-opens admission from P, which only happens on completions
// otherwise.
func (s *SchedulerS) OnCapacityChange(t int64, capacity int) {
	if !s.opts.Resilient {
		return
	}
	grew := capacity > s.mEff
	s.mEff = capacity
	if grew {
		s.admitFromP(t)
	}
}

// OnWorkLost implements sim.CapacityAware. Under Options.Resilient the job is
// marked for a slack re-check at the next Assign: if the re-executed work no
// longer fits before the deadline even at full allotment, the job is expired
// from Q early and its band refilled from P.
func (s *SchedulerS) OnWorkLost(t int64, jobID int, lost int64) {
	if !s.opts.Resilient {
		return
	}
	if s.lost == nil {
		s.lost = make(map[int]bool)
	}
	s.lost[jobID] = true
}

// recheckLost expires marked jobs whose remaining work provably cannot finish
// by the deadline on their planned allotment, then refills Q from P if
// anything was dropped. Resilient mode only.
func (s *SchedulerS) recheckLost(t int64, view sim.AssignView) {
	if len(s.lost) == 0 {
		return
	}
	ids := make([]int, 0, len(s.lost))
	for id := range s.lost {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s.lost = nil
	dropped := false
	for _, id := range ids {
		info, ok := s.info[id]
		if !ok || info.committed {
			continue
		}
		if _, inQ := s.q.Get(id); !inQ {
			continue
		}
		// Provable hopelessness only: even running the full planned allotment
		// every remaining tick (capacity may recover), the re-executed work
		// cannot fit before the deadline. Clamping to the momentary capacity
		// here would expire jobs a short outage merely delays.
		remain := float64(info.view.W - view.ExecutedWork(id))
		left := float64(info.view.AbsDeadline() - t)
		if remain > left*s.speed*float64(info.alloc) {
			s.dropFromQ(id)
			delete(s.info, id)
			dropped = true
			if s.tel != nil {
				ev := telemetry.JobEvent(t, telemetry.KindAbandon, id)
				ev.Why = "hopeless-lost-work"
				s.tel.Emit(ev)
			}
		}
	}
	if dropped {
		s.admitFromP(t)
	}
}

// Assign implements sim.Scheduler: walk Q from highest to lowest density,
// granting each job its full allotment when enough processors remain;
// otherwise skip it and continue. With Options.WorkConserving, leftover
// processors are then topped up onto admitted jobs in density order.
func (s *SchedulerS) Assign(t int64, view sim.AssignView, dst []sim.Alloc) []sim.Alloc {
	if s.opts.Resilient {
		s.recheckLost(t, view)
	}
	free := s.mEff
	base := len(dst)
	expired := s.expiredBuf[:0]
	s.q.ForEach(func(it queue.Item) bool {
		info := s.info[it.ID]
		// A committed job is never abandoned at its deadline: it keeps its
		// allotment (and band weight) past it and runs to a zero-profit
		// completion — the scheduler-side half of the commitment contract.
		if info.view.AbsDeadline() <= t && !info.committed {
			expired = append(expired, it.ID)
			return true
		}
		// While degraded, re-partition: grant what is left rather than letting
		// jobs starve behind an all-or-nothing check sized for lost capacity.
		// At full capacity this never triggers, so the fault-free schedule is
		// untouched.
		a := info.alloc
		if s.opts.Resilient && s.mEff < s.m && a > free {
			a = free
		}
		if a > 0 && free >= a {
			dst = append(dst, sim.Alloc{JobID: it.ID, Procs: a})
			free -= a
		}
		return free > 0 || s.opts.WorkConserving
	})
	for _, id := range expired {
		s.dropFromQ(id)
		delete(s.info, id)
		if s.tel != nil {
			ev := telemetry.JobEvent(t, telemetry.KindAbandon, id)
			ev.Why = "past-deadline"
			s.tel.Emit(ev)
		}
	}
	s.expiredBuf = expired[:0]
	if s.opts.WorkConserving && free > 0 {
		dst = s.topUp(t, view, dst, base, free)
	}
	return dst
}

// topUp makes the schedule work-conserving: base grants are first trimmed
// to each job's ready-node count (processors beyond that are provably idle
// this tick), then the pooled leftovers go to admitted jobs in density
// order, up to their ready counts.
func (s *SchedulerS) topUp(t int64, view sim.AssignView, dst []sim.Alloc, base, free int) []sim.Alloc {
	granted := make(map[int]int, len(dst)-base)
	for _, a := range dst[base:] {
		g := a.Procs
		if r := view.ReadyCount(a.JobID); r < g {
			g = r
			free += a.Procs - r
		}
		granted[a.JobID] = g
	}
	s.q.ForEach(func(it queue.Item) bool {
		if free == 0 {
			return false
		}
		info := s.info[it.ID]
		if info.view.AbsDeadline() <= t && !info.committed {
			return true
		}
		extra := view.ReadyCount(it.ID) - granted[it.ID]
		if extra > free {
			extra = free
		}
		if extra > 0 {
			granted[it.ID] += extra
			free -= extra
		}
		return true
	})
	// Re-emit merged allocations in density order.
	dst = dst[:base]
	s.q.ForEach(func(it queue.Item) bool {
		if p := granted[it.ID]; p > 0 {
			dst = append(dst, sim.Alloc{JobID: it.ID, Procs: p})
		}
		return true
	})
	return dst
}

// CheckInvariants verifies, by exhaustive recomputation, that every band of
// Q satisfies N(Q, v_j, c·v_j) ≤ b·m + tol (Observation 3). Tests call it
// after every event. The paper's invariant is exact; tol absorbs float
// rounding only.
func (s *SchedulerS) CheckInvariants() error {
	par := s.opts.Params
	bm := par.B()*float64(s.m) + 1e-9
	var items []queue.Item
	items = s.q.Snapshot(items)
	for _, ji := range items {
		var sum float64
		for _, jj := range items {
			if jj.Density >= ji.Density && jj.Density < par.C*ji.Density {
				sum += jj.Weight
			}
		}
		if sum > bm {
			return fmt.Errorf("core: band [%g, %g) holds %g > b·m = %g",
				ji.Density, par.C*ji.Density, sum, bm)
		}
	}
	return nil
}

// QueueSizes returns |Q| and |P| for diagnostics.
func (s *SchedulerS) QueueSizes() (q, p int) { return s.q.Len(), s.p.Len() }

// Occupancy returns the total band weight held by Q relative to the b·m
// admission budget of condition (2): 0 is an empty scheduler, values near 1
// mean arriving jobs are likely to be parked. The serving tier's placer
// routes submissions by it. Returns 0 before Init.
func (s *SchedulerS) Occupancy() float64 {
	if s.band == nil || s.m <= 0 {
		return 0
	}
	bm := s.opts.Params.B() * float64(s.m)
	if bm <= 0 {
		return 0
	}
	return s.band.SumFrom(0) / bm
}

var (
	_ sim.Scheduler     = (*SchedulerS)(nil)
	_ sim.CapacityAware = (*SchedulerS)(nil)
	_ sim.Committer     = (*SchedulerS)(nil)
)
