package core

import (
	"math"
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/profit"
	"dagsched/internal/queue"
	"dagsched/internal/sim"
)

func stepFn(t *testing.T, value float64, deadline int64) profit.Fn {
	t.Helper()
	s, err := profit.NewStep(value, deadline)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newS(t *testing.T, eps float64) *SchedulerS {
	t.Helper()
	return NewSchedulerS(Options{Params: MustParams(eps)})
}

// view builds a JobView directly for plan-level tests.
func view(t *testing.T, id int, w, l, release, deadline int64, p float64) sim.JobView {
	t.Helper()
	return sim.JobView{ID: id, Release: release, W: w, L: l, Profit: stepFn(t, p, deadline)}
}

func TestPlanHandComputed(t *testing.T) {
	// m=8, eps=1 (delta=0.25): job W=64, L=8, D=30.
	// n = (64−8)/(30/1.5 − 8) = 56/12 ≈ 4.667 → alloc 5.
	// x = 56/5 + 8 = 19.2; δ-good since 1.5·19.2 = 28.8 ≤ 30.
	s := newS(t, 1.0)
	s.Init(sim.Env{M: 8, Speed: 1})
	plan := s.Plan(view(t, 1, 64, 8, 0, 30, 12))
	if math.Abs(plan.NReal-56.0/12.0) > 1e-12 {
		t.Errorf("NReal = %v, want %v", plan.NReal, 56.0/12.0)
	}
	if plan.Alloc != 5 {
		t.Errorf("Alloc = %d, want 5", plan.Alloc)
	}
	if math.Abs(plan.X-19.2) > 1e-12 {
		t.Errorf("X = %v, want 19.2", plan.X)
	}
	if !plan.Good {
		t.Error("job should be δ-good")
	}
	if math.Abs(plan.Density-12.0/(19.2*5)) > 1e-12 {
		t.Errorf("Density = %v", plan.Density)
	}
}

func TestPlanPureChain(t *testing.T) {
	s := newS(t, 1.0)
	s.Init(sim.Env{M: 4, Speed: 1})
	plan := s.Plan(view(t, 1, 10, 10, 0, 40, 1))
	if plan.Alloc != 1 {
		t.Errorf("chain Alloc = %d, want 1", plan.Alloc)
	}
	if plan.X != 10 {
		t.Errorf("chain X = %v, want L = 10", plan.X)
	}
	if !plan.Good {
		t.Error("chain with slack 4x should be δ-good")
	}
}

func TestPlanTightDeadlineNotGood(t *testing.T) {
	// D barely above L: D/(1+2δ) − L < 0 → inadmissible.
	s := newS(t, 1.0)
	s.Init(sim.Env{M: 4, Speed: 1})
	plan := s.Plan(view(t, 1, 40, 10, 0, 11, 1))
	if plan.Good {
		t.Error("job with D ≈ L should not be δ-good")
	}
}

func TestPlanSpeedScalesEffectiveTimes(t *testing.T) {
	// At speed 2 the effective work halves, so a deadline infeasible at
	// speed 1 becomes δ-good.
	s1 := newS(t, 1.0)
	s1.Init(sim.Env{M: 4, Speed: 1})
	s2 := newS(t, 1.0)
	s2.Init(sim.Env{M: 4, Speed: 2})
	v := view(t, 1, 40, 8, 0, 14, 1)
	if s1.Plan(v).Good {
		t.Error("speed 1: expected not δ-good")
	}
	if !s2.Plan(v).Good {
		t.Error("speed 2: expected δ-good")
	}
}

func TestLemma1AllotmentBound(t *testing.T) {
	// For jobs satisfying the Theorem 2 condition, n ≤ b²m (Lemma 1) and
	// the integral allotment is at most ceil(b²m).
	rng := rand.New(rand.NewSource(3))
	for _, eps := range []float64{0.5, 1, 2} {
		p := MustParams(eps)
		m := 16
		s := NewSchedulerS(Options{Params: p})
		s.Init(sim.Env{M: m, Speed: 1})
		for i := 0; i < 300; i++ {
			w := 1 + rng.Int63n(500)
			l := 1 + rng.Int63n(w)
			minD := (1 + eps) * (float64(w-l)/float64(m) + float64(l))
			d := int64(math.Ceil(minD)) + rng.Int63n(100)
			plan := s.Plan(view(t, i, w, l, 0, d, 1))
			if plan.NReal > p.B()*p.B()*float64(m)+1e-9 {
				t.Fatalf("eps=%v W=%d L=%d D=%d: n=%v > b²m=%v",
					eps, w, l, d, plan.NReal, p.B()*p.B()*float64(m))
			}
			if float64(plan.Alloc) > math.Ceil(p.B()*p.B()*float64(m)) {
				t.Fatalf("alloc %d exceeds ceil(b²m)", plan.Alloc)
			}
		}
	}
}

func TestLemma2EveryConditionJobIsGood(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, eps := range []float64{0.5, 1, 2} {
		m := 8
		s := NewSchedulerS(Options{Params: MustParams(eps)})
		s.Init(sim.Env{M: m, Speed: 1})
		for i := 0; i < 300; i++ {
			w := 1 + rng.Int63n(500)
			l := 1 + rng.Int63n(w)
			minD := (1 + eps) * (float64(w-l)/float64(m) + float64(l))
			d := int64(math.Ceil(minD)) + rng.Int63n(50)
			if plan := s.Plan(view(t, i, w, l, 0, d, 1)); !plan.Good {
				t.Fatalf("eps=%v W=%d L=%d D=%d not δ-good (x=%v)", eps, w, l, d, plan.X)
			}
		}
	}
}

func TestLemma3ProcessorStepBound(t *testing.T) {
	// x_i·n_i ≤ a·W_i for the real allotment; the integral allotment adds
	// at most one extra L_i of slack.
	rng := rand.New(rand.NewSource(5))
	eps := 1.0
	p := MustParams(eps)
	m := 8
	s := NewSchedulerS(Options{Params: p})
	s.Init(sim.Env{M: m, Speed: 1})
	for i := 0; i < 300; i++ {
		w := 2 + rng.Int63n(500)
		l := 1 + rng.Int63n(w-1)
		minD := (1 + eps) * (float64(w-l)/float64(m) + float64(l))
		d := int64(math.Ceil(minD)) + rng.Int63n(50)
		plan := s.Plan(view(t, i, w, l, 0, d, 1))
		bound := p.A()*float64(w) + float64(l)
		if plan.X*float64(plan.Alloc) > bound+1e-9 {
			t.Fatalf("W=%d L=%d D=%d: x·A = %v > a·W + L = %v",
				w, l, d, plan.X*float64(plan.Alloc), bound)
		}
	}
}

func TestSingleJobAdmittedAndMeetsDeadline(t *testing.T) {
	// Block(8,2): W=16, L=2, m=4. Condition: 2·(14/4+2) = 11 ≤ D.
	j := &sim.Job{ID: 1, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 5, 14)}
	s := newS(t, 1.0)
	res, err := sim.Run(sim.Config{M: 4}, []*sim.Job{j}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.TotalProfit != 5 {
		t.Fatalf("completed=%d profit=%v", res.Completed, res.TotalProfit)
	}
	if n, pr := s.Started(); n != 1 || pr != 5 {
		t.Errorf("Started = %d, %v", n, pr)
	}
}

func TestObservation2CompletionWithinX(t *testing.T) {
	// A δ-good admitted job alone in the system finishes within ceil(x)
	// ticks of arrival.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		g := dag.Layered(rng, 1+rng.Intn(4), 1+rng.Intn(6), 1+rng.Int63n(4), 0.5)
		w, l := g.TotalWork(), g.Span()
		m := 4
		minD := 2 * (float64(w-l)/float64(m) + float64(l))
		d := int64(math.Ceil(minD)) + 5
		s := newS(t, 1.0)
		s.Init(sim.Env{M: m, Speed: 1})
		plan := s.Plan(sim.JobView{ID: 1, W: w, L: l, Profit: stepFn(t, 1, d)})
		if !plan.Good {
			t.Fatalf("trial %d: job not δ-good", trial)
		}
		j := &sim.Job{ID: 1, Graph: g, Release: 0, Profit: stepFn(t, 1, d)}
		s2 := newS(t, 1.0)
		res, err := sim.Run(sim.Config{M: m}, []*sim.Job{j}, s2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != 1 {
			t.Fatalf("trial %d: job missed deadline %d (W=%d L=%d)", trial, d, w, l)
		}
		if res.Jobs[0].Latency > int64(math.Ceil(plan.X)) {
			t.Errorf("trial %d: latency %d > ceil(x)=%v", trial, res.Jobs[0].Latency, math.Ceil(plan.X))
		}
	}
}

// invariantChecker wraps SchedulerS, verifying Observation 3 after every
// scheduler event.
type invariantChecker struct {
	*SchedulerS
	t *testing.T
}

func (ic *invariantChecker) check() {
	ic.t.Helper()
	if err := ic.SchedulerS.CheckInvariants(); err != nil {
		ic.t.Fatal(err)
	}
}

func (ic *invariantChecker) OnArrival(t int64, v sim.JobView) {
	ic.SchedulerS.OnArrival(t, v)
	ic.check()
}

func (ic *invariantChecker) OnCompletion(t int64, id int) {
	ic.SchedulerS.OnCompletion(t, id)
	ic.check()
}

func (ic *invariantChecker) OnExpire(t int64, id int) {
	ic.SchedulerS.OnExpire(t, id)
	ic.check()
}

func TestObservation3BandInvariantUnderLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := 8
	var jobs []*sim.Job
	clock := int64(0)
	for i := 0; i < 60; i++ {
		g := dag.Layered(rng, 1+rng.Intn(4), 1+rng.Intn(5), 1+rng.Int63n(3), 0.5)
		w, l := g.TotalWork(), g.Span()
		minD := 2 * (float64(w-l)/float64(m) + float64(l))
		d := int64(math.Ceil(minD)) + rng.Int63n(20)
		jobs = append(jobs, &sim.Job{
			ID:      i,
			Graph:   g,
			Release: clock,
			Profit:  stepFn(t, 1+float64(rng.Intn(10)), d),
		})
		clock += rng.Int63n(3) // bursty arrivals → overload
	}
	ic := &invariantChecker{SchedulerS: newS(t, 1.0), t: t}
	res, err := sim.Run(sim.Config{M: m}, jobs, ic)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Error("overloaded run completed nothing")
	}
}

func TestOverloadSendsJobsToP(t *testing.T) {
	// Identical heavy jobs at t=0: only the first few fit under b·m.
	m := 4
	var jobs []*sim.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, &sim.Job{ID: i, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 1, 14)})
	}
	s := newS(t, 1.0)
	res, err := sim.Run(sim.Config{M: m}, jobs, s)
	if err != nil {
		t.Fatal(err)
	}
	started, _ := s.Started()
	if started >= 6 {
		t.Errorf("all %d jobs admitted despite band limit", started)
	}
	if res.Completed == 0 {
		t.Error("nothing completed")
	}
}

func TestAdmissionFromPAfterCompletion(t *testing.T) {
	// m=4, eps=1: b·m ≈ 3.464.
	// Blocker: Block(19,2) (W=38, L=2), D=21 → n=3, alloc 3, x=14,
	//   band weight 3·14·1.5/21 = 3.0, density 42/42 = 1.
	// Probe: Block(8,2) (W=16, L=2), D=40 → alloc 1, x=16,
	//   weight 16·1.5/40 = 0.6, density 8/16 = 0.5: its band [0.5, c·0.5)
	//   contains the blocker → 3.6 > 3.464 → parked in P at arrival.
	// Blocker completes at t=14; at now=14, 40−14 = 26 ≥ 1.25·16 = 20 →
	// fresh → admitted → completes at 30 ≤ 40.
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Block(19, 2), Release: 0, Profit: stepFn(t, 42, 21)},
		{ID: 2, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 8, 40)},
	}
	s := newS(t, 1.0)
	res, err := sim.Run(sim.Config{M: 4}, jobs, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed = %d, want both (stats: %+v)", res.Completed, res.Jobs)
	}
	if n, _ := s.Started(); n != 2 {
		t.Errorf("started = %d, want 2", n)
	}
	for _, js := range res.Jobs {
		if js.ID == 2 && js.CompletedAt <= 14 {
			t.Errorf("job 2 completed at %d, should start only after the blocker's completion", js.CompletedAt)
		}
	}
}

func TestStaleJobNotAdmitted(t *testing.T) {
	// Same blocker, but the probe's deadline 30 is too close at the
	// completion event (30−14 = 16 < 1.25·16 = 20): not δ-fresh, so it
	// stays in P and expires.
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Block(19, 2), Release: 0, Profit: stepFn(t, 42, 21)},
		{ID: 2, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 8, 30)},
	}
	s := newS(t, 1.0)
	res, err := sim.Run(sim.Config{M: 4}, jobs, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (stats: %+v)", res.Completed, res.Jobs)
	}
	if n, _ := s.Started(); n != 1 {
		t.Errorf("started = %d, want 1 (probe stale)", n)
	}
}

func TestArrivalDoesNotDisplaceStartedJob(t *testing.T) {
	// A denser job arriving after a sparser one has started parks in P:
	// the paper's S never preempts admission (condition (2) counts the
	// arriving job against the started job's band).
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 1, 14)},
		{ID: 2, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 10, 14)},
	}
	s := newS(t, 1.0)
	res, err := sim.Run(sim.Config{M: 4}, jobs, s)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Started(); n != 1 {
		t.Errorf("started = %d, want 1 (dense arrival must not displace)", n)
	}
	if res.TotalProfit != 1 {
		t.Errorf("profit = %v, want 1 (only the started job completes)", res.TotalProfit)
	}
}

func TestExecutionPrefersDensityWithinQ(t *testing.T) {
	// Three jobs whose densities differ by more than c, so their bands are
	// disjoint and all are admitted, but Σ alloc = 6 > m = 4: each tick only
	// the two densest run. The cheapest job starts after a completion and
	// misses its deadline.
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 1, 14)},
		{ID: 2, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 100, 14)},
		{ID: 3, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 10000, 14)},
	}
	s := newS(t, 1.0)
	res, err := sim.Run(sim.Config{M: 4}, jobs, s)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Started(); n != 3 {
		t.Fatalf("started = %d, want 3 (disjoint bands admit all)", n)
	}
	if res.TotalProfit != 10100 {
		t.Errorf("profit = %v, want 10100 (two densest complete)", res.TotalProfit)
	}
}

func TestAblationNoBandCheckAdmitsAll(t *testing.T) {
	m := 4
	var jobs []*sim.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, &sim.Job{ID: i, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 1, 14)})
	}
	s := NewSchedulerS(Options{Params: MustParams(1.0), Ablation: AblationNoBandCheck})
	if _, err := sim.Run(sim.Config{M: m}, jobs, s); err != nil {
		t.Fatal(err)
	}
	if started, _ := s.Started(); started != 6 {
		t.Errorf("ablated scheduler started %d, want all 6", started)
	}
}

func TestSchedulerNameEncodesVariant(t *testing.T) {
	s := NewSchedulerS(Options{Params: MustParams(0.5), Ablation: AblationAllotOne})
	if got := s.Name(); got != "paper-S(eps=0.5)/allot-1" {
		t.Errorf("Name = %q", got)
	}
}

func TestNewSchedulerSPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid params")
		}
	}()
	NewSchedulerS(Options{Params: Params{Epsilon: -1}})
}

// TestBandIndexImplementationsAgree: S must behave identically whether the
// band index is the naive scan or the treap — the structures are
// interchangeable by contract.
func TestBandIndexImplementationsAgree(t *testing.T) {
	mkJobs := func() []*sim.Job {
		var jobs []*sim.Job
		rng := rand.New(rand.NewSource(31))
		clock := int64(0)
		for i := 0; i < 50; i++ {
			g := dag.Layered(rng, 1+rng.Intn(4), 1+rng.Intn(5), 1+rng.Int63n(3), 0.5)
			w, l := g.TotalWork(), g.Span()
			d := int64(math.Ceil(2*(float64(w-l)/8+float64(l)))) + rng.Int63n(30)
			jobs = append(jobs, &sim.Job{ID: i, Graph: g, Release: clock, Profit: stepFn(t, float64(1+rng.Intn(9)), d)})
			clock += rng.Int63n(5)
		}
		return jobs
	}
	naive := NewSchedulerS(Options{Params: MustParams(1), NewBand: func() queue.BandIndex { return queue.NewNaiveBand() }})
	treap := NewSchedulerS(Options{Params: MustParams(1)})
	a, err := sim.Run(sim.Config{M: 8}, mkJobs(), naive)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(sim.Config{M: 8}, mkJobs(), treap)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalProfit != b.TotalProfit || a.Completed != b.Completed || a.BusyProcTicks != b.BusyProcTicks {
		t.Errorf("band implementations diverge: naive (%v,%d,%d) vs treap (%v,%d,%d)",
			a.TotalProfit, a.Completed, a.BusyProcTicks, b.TotalProfit, b.Completed, b.BusyProcTicks)
	}
	na, _ := naive.Started()
	nb, _ := treap.Started()
	if na != nb {
		t.Errorf("admission counts diverge: %d vs %d", na, nb)
	}
}
