// Package core implements the paper's contribution: scheduler S for jobs
// with deadlines (Section 3, Theorem 2) and its generalization to arbitrary
// non-increasing profit functions (Section 5, Theorem 3).
//
// Scheduler S is semi-non-clairvoyant: on arrival it sees only a job's total
// work W_i, span L_i, and deadline/profit. It precomputes a processor
// allotment n_i — roughly the minimum number of dedicated processors that
// completes the job by D_i/(1+2δ) regardless of DAG structure — and a
// density v_i = p_i/(x_i·n_i), the profit per processor step. Jobs are kept
// in two density-ordered queues: Q (started) and P (waiting). A job enters Q
// only if it is δ-good and the admission band condition (2) holds: for every
// job J_j in Q∪{J_i}, the total allotment of jobs with density in
// [v_j, c·v_j) stays at most b·m. Each tick, S executes jobs of Q from
// highest to lowest density, granting each its full allotment if enough
// processors remain.
package core

import (
	"fmt"
	"math"
)

// Params carries the constants of the paper's Table 1 for a chosen ε:
// δ < ε/2, c ≥ 1 + 1/(δε), b = sqrt((1+2δ)/(1+ε)) < 1, and
// a = 1 + (1+2δ)/(ε−2δ).
type Params struct {
	Epsilon float64
	Delta   float64
	C       float64
}

// NewParams returns parameters for ε with δ = ε/4 and the smallest c that
// both satisfies the paper's requirement c ≥ 1 + 1/(δε) and keeps the
// Lemma 5 charging margin (1−b)/b − 1/((c−1)δ) strictly positive with a
// factor-two slack. (At the paper's equality choice the margin can reach
// zero; the brief announcement's arithmetic treats (1−b)/b as ε, which is
// only an approximation.)
func NewParams(eps float64) (Params, error) {
	delta := eps / 4
	b := math.Sqrt((1 + 2*delta) / (1 + eps))
	cPaper := 1 + 1/(delta*eps)
	cMargin := 1 + 2*b/((1-b)*delta)
	p := Params{
		Epsilon: eps,
		Delta:   delta,
		C:       math.Max(cPaper, cMargin),
	}
	return p, p.Validate()
}

// MustParams is NewParams that panics on error, for statically-valid ε.
func MustParams(eps float64) Params {
	p, err := NewParams(eps)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate checks the constraints the analysis requires.
func (p Params) Validate() error {
	if !(p.Epsilon > 0) || math.IsInf(p.Epsilon, 0) || math.IsNaN(p.Epsilon) {
		return fmt.Errorf("core: epsilon %v must be positive and finite", p.Epsilon)
	}
	if !(p.Delta > 0) || p.Delta >= p.Epsilon/2 {
		return fmt.Errorf("core: delta %v must be in (0, eps/2) = (0, %v)", p.Delta, p.Epsilon/2)
	}
	if p.C < 1+1/(p.Delta*p.Epsilon) {
		return fmt.Errorf("core: c %v must be at least 1 + 1/(delta*eps) = %v", p.C, 1+1/(p.Delta*p.Epsilon))
	}
	return nil
}

// B returns b = sqrt((1+2δ)/(1+ε)) < 1, the admission capacity fraction.
func (p Params) B() float64 {
	return math.Sqrt((1 + 2*p.Delta) / (1 + p.Epsilon))
}

// A returns a = 1 + (1+2δ)/(ε−2δ), the processor-step inflation bound of
// Lemma 3 (x_i·n_i ≤ a·W_i).
func (p Params) A() float64 {
	return 1 + (1+2*p.Delta)/(p.Epsilon-2*p.Delta)
}

// CompetitiveBound returns the upper bound on OPT/ALG proven in Lemma 10
// with the exact Lemma 5 margin (1−b)/b − 1/((c−1)δ) in the denominator:
//
//	(1 + a·(1 + 1/(εδ))·(1+2δ)/(δ·b·(1−b))) / ((1−b)/b − 1/((c−1)δ)).
//
// It is the Θ(1/ε⁶) constant of Theorem 2 for this parameterization — useful
// to display next to measured ratios (the analysis is far from tight). It
// returns +Inf when the margin is non-positive.
func (p Params) CompetitiveBound() float64 {
	b := p.B()
	num := 1 + p.A()*(1+1/(p.Epsilon*p.Delta))*(1+2*p.Delta)/(p.Delta*b*(1-b))
	den := (1-b)/b - 1/((p.C-1)*p.Delta)
	if den <= 0 {
		return math.Inf(1)
	}
	return num / den
}

// DeadlineSlackOK reports whether a job with effective work w, span l (both
// in ticks at the scheduler's speed) and relative deadline d satisfies the
// Theorem 2 condition (1+ε)((w−l)/m + l) ≤ d.
func (p Params) DeadlineSlackOK(w, l, d float64, m int) bool {
	return (1+p.Epsilon)*((w-l)/float64(m)+l) <= d
}
