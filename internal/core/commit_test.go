package core

import (
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/faults"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

func TestCommitmentNameAndValidation(t *testing.T) {
	plain := NewSchedulerS(Options{Params: MustParams(1)})
	if got := plain.Name(); got != "paper-S(eps=1)" {
		t.Fatalf("default Name = %q (the non-binding default must not change it)", got)
	}
	soft := NewSchedulerS(Options{Params: MustParams(1), Commitment: sim.CommitmentOnAdmission})
	if got := soft.Name(); got != "paper-S(eps=1)" {
		t.Fatalf("on-admission Name = %q (non-binding, must stay unsuffixed)", got)
	}
	bound := NewSchedulerS(Options{Params: MustParams(1), Commitment: sim.CommitmentDelta})
	if got := bound.Name(); got != "paper-S(eps=1)+commit=delta" {
		t.Fatalf("delta Name = %q", got)
	}
	if bound.Commitment() != sim.CommitmentDelta {
		t.Fatalf("Commitment() = %q", bound.Commitment())
	}
	if err := bound.SetCommitment("bogus"); err == nil {
		t.Fatal("SetCommitment accepted an unknown policy")
	}
	if err := bound.SetCommitment(sim.CommitmentOnArrival); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewSchedulerS accepted an invalid commitment policy")
		}
	}()
	NewSchedulerS(Options{Params: MustParams(1), Commitment: "bogus"})
}

// TestOnArrivalRefusalIsFinal: under on-arrival commitment the release-time
// verdict is the contract — a job that cannot be admitted immediately is
// refused outright, never parked for a later chance, and every admitted job
// is committed from that instant.
func TestOnArrivalRefusalIsFinal(t *testing.T) {
	mk := func() []*sim.Job {
		var jobs []*sim.Job
		for i := 1; i <= 6; i++ {
			jobs = append(jobs, &sim.Job{ID: i, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 1, 14)})
		}
		return jobs
	}

	// Baseline: the default policy parks the overflow in P.
	base := newS(t, 1.0)
	base.Init(sim.Env{M: 4, Speed: 1})
	for _, j := range mk() {
		base.OnArrival(0, sim.JobView{ID: j.ID, W: j.Graph.TotalWork(), L: j.Graph.Span(), Profit: j.Profit})
	}
	_, basePark := base.QueueSizes()
	if basePark == 0 {
		t.Fatal("workload too light: nothing parked under the default policy")
	}

	s := NewSchedulerS(Options{Params: MustParams(1), Commitment: sim.CommitmentOnArrival})
	s.Init(sim.Env{M: 4, Speed: 1})
	admitted := 0
	for _, j := range mk() {
		v := sim.JobView{ID: j.ID, W: j.Graph.TotalWork(), L: j.Graph.Span(), Profit: j.Profit}
		s.OnArrival(0, v)
		if s.Committed(j.ID) {
			admitted++
		}
	}
	q, p := s.QueueSizes()
	if p != 0 {
		t.Fatalf("on-arrival parked %d jobs; refusal must be final", p)
	}
	if q != admitted || admitted == 0 || admitted == 6 {
		t.Fatalf("q=%d admitted=%d, want a committed strict subset in Q", q, admitted)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// End to end: admitted-and-committed jobs complete, refused ones expire.
	s2 := NewSchedulerS(Options{Params: MustParams(1), Commitment: sim.CommitmentOnArrival})
	res, err := sim.Run(sim.Config{M: 4}, mk(), s2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != admitted || res.Expired != 6-admitted {
		t.Fatalf("completed=%d expired=%d, want %d and %d", res.Completed, res.Expired, admitted, 6-admitted)
	}
}

// commitProbe wraps SchedulerS and snapshots the commitment ledger after
// every scheduler event, so the test sees a job as committed even if it
// completes (and is forgotten) later the same run.
type commitProbe struct {
	*SchedulerS
	arrived   []int
	committed map[int]bool
}

func (cp *commitProbe) poll() {
	for _, id := range cp.arrived {
		if cp.SchedulerS.Committed(id) {
			cp.committed[id] = true
		}
	}
}

func (cp *commitProbe) OnArrival(t int64, v sim.JobView) {
	cp.arrived = append(cp.arrived, v.ID)
	cp.SchedulerS.OnArrival(t, v)
	cp.poll()
}

func (cp *commitProbe) Assign(t int64, view sim.AssignView, dst []sim.Alloc) []sim.Alloc {
	out := cp.SchedulerS.Assign(t, view, dst)
	cp.poll() // δ-commitment also fires on re-admission from P inside Assign
	return out
}

// TestCommittedJobIsNeverAborted is the acceptance property: across faulty,
// overloaded runs under δ-commitment, every job the scheduler ever committed
// to finishes — none expire, even when crashes push them past their
// deadlines.
func TestCommittedJobIsNeverAborted(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		in, err := workload.Generate(workload.Config{
			Seed: seed, N: 40, M: 8, Eps: 1, SlackSpread: 1, Load: 1.8, MaxProfit: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		cp := &commitProbe{
			SchedulerS: NewSchedulerS(Options{Params: MustParams(1), Commitment: sim.CommitmentDelta}),
			committed:  make(map[int]bool),
		}
		res, err := sim.Run(sim.Config{
			M:      8,
			Faults: &faults.Config{Seed: seed, MTBF: 12, MTTR: 8},
		}, in.Jobs, cp)
		if err != nil {
			t.Fatal(err)
		}
		if len(cp.committed) == 0 {
			t.Fatalf("seed %d: nothing was ever committed; workload too light", seed)
		}
		done := make(map[int]bool)
		for _, js := range res.Jobs {
			if js.Completed {
				done[js.ID] = true
			}
		}
		for id := range cp.committed {
			if !done[id] {
				t.Errorf("seed %d: committed job %d did not complete", seed, id)
			}
		}
	}
}

// TestDeltaTickEventedEquivalent pins that the evented engine's committed
// expiry-skip reproduces the tick engine bit for bit under δ-commitment.
func TestDeltaTickEventedEquivalent(t *testing.T) {
	mk := func(tt *testing.T) []*sim.Job {
		in, err := workload.Generate(workload.Config{
			Seed: 9, N: 50, M: 8, Eps: 1, SlackSpread: 1, Load: 1.6, MaxProfit: 10,
		})
		if err != nil {
			tt.Fatal(err)
		}
		return in.Jobs
	}
	a, err := sim.Run(sim.Config{M: 8}, mk(t),
		NewSchedulerS(Options{Params: MustParams(1), Commitment: sim.CommitmentDelta}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunEvented(sim.Config{M: 8}, mk(t),
		NewSchedulerS(Options{Params: MustParams(1), Commitment: sim.CommitmentDelta}))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalProfit != b.TotalProfit || a.Completed != b.Completed ||
		a.Expired != b.Expired || a.BusyProcTicks != b.BusyProcTicks {
		t.Errorf("engines diverge under delta: tick (%v,%d,%d,%d) vs evented (%v,%d,%d,%d)",
			a.TotalProfit, a.Completed, a.Expired, a.BusyProcTicks,
			b.TotalProfit, b.Completed, b.Expired, b.BusyProcTicks)
	}
}

// TestPerJobOverrideCommits: a single job requesting delta on a scheduler
// whose daemon-wide policy is none is committed at admission, while its
// unmarked twin is not.
func TestPerJobOverrideCommits(t *testing.T) {
	s := newS(t, 1.0)
	s.Init(sim.Env{M: 4, Speed: 1})
	s.OnArrival(0, sim.JobView{ID: 1, W: 32, L: 4, Profit: stepFn(t, 10, 40), Commitment: sim.CommitmentDelta})
	s.OnArrival(0, sim.JobView{ID: 2, W: 32, L: 4, Profit: stepFn(t, 10, 40)})
	if !s.Committed(1) {
		t.Error("job 1 requested delta and was admitted; must be committed")
	}
	if s.Committed(2) {
		t.Error("job 2 inherited policy none; must not be committed")
	}
}
