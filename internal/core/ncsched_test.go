package core

import (
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/sim"
)

func newNC(t *testing.T, eps float64) *SchedulerNC {
	t.Helper()
	return NewSchedulerNC(Options{Params: MustParams(eps)})
}

func TestNCName(t *testing.T) {
	if got := newNC(t, 1).Name(); got != "paper-NC(eps=1)" {
		t.Errorf("Name = %q", got)
	}
}

func TestNCCompletesSingleJobWithGenerousDeadline(t *testing.T) {
	// Block(32,1) on m=8 with a lazy deadline: guesses double from 8 up to
	// ≥32; each wrong guess wastes bounded work, and the job still lands.
	j := &sim.Job{ID: 1, Graph: dag.Block(32, 1), Release: 0, Profit: stepFn(t, 5, 200)}
	s := newNC(t, 1.0)
	res, err := sim.Run(sim.Config{M: 8}, []*sim.Job{j}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.TotalProfit != 5 {
		t.Fatalf("completed=%d profit=%v", res.Completed, res.TotalProfit)
	}
	if s.Regrows() < 1 {
		t.Errorf("Regrows = %d, want ≥ 1 (initial guess 8 < W = 32)", s.Regrows())
	}
}

func TestNCSmallJobNeedsNoRegrow(t *testing.T) {
	// W = m = initial guess: the job completes within the first guess.
	j := &sim.Job{ID: 1, Graph: dag.Block(4, 1), Release: 0, Profit: stepFn(t, 1, 100)}
	s := newNC(t, 1.0)
	res, err := sim.Run(sim.Config{M: 8}, []*sim.Job{j}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatal("job did not complete")
	}
	if s.Regrows() != 0 {
		t.Errorf("Regrows = %d, want 0", s.Regrows())
	}
}

func TestNCRespectsDeadlines(t *testing.T) {
	// A tight deadline leaves no room for guess-doubling waste: NC may
	// fail where S succeeds; it must never oversubscribe or credit late
	// completions (engine enforces), and losses show up as expiries.
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Block(32, 2), Release: 0, Profit: stepFn(t, 5, 18)},
	}
	s := newNC(t, 1.0)
	res, err := sim.Run(sim.Config{M: 8}, jobs, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProfit != 0 && res.Jobs[0].Latency > 18 {
		t.Error("credited a late completion")
	}
}

func TestNCManyJobsUnderLoad(t *testing.T) {
	var jobs []*sim.Job
	for i := 0; i < 24; i++ {
		jobs = append(jobs, &sim.Job{
			ID: i, Graph: dag.Block(8+i%8, 2), Release: int64(4 * i),
			Profit: stepFn(t, float64(1+i%5), 40),
		})
	}
	s := newNC(t, 1.0)
	res, err := sim.Run(sim.Config{M: 8}, jobs, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Error("NC completed nothing under moderate load")
	}
	n, pr := s.Started()
	if n == 0 || pr <= 0 {
		t.Errorf("Started = %d, %v", n, pr)
	}
}

func TestNCPaysANonClairvoyancePrice(t *testing.T) {
	// On the same workload S (which knows W, L) should earn at least as
	// much as NC in aggregate — the gap is the price of full
	// non-clairvoyance the EXT experiment measures.
	var jobs []*sim.Job
	for i := 0; i < 30; i++ {
		jobs = append(jobs, &sim.Job{
			ID: i, Graph: dag.ForkJoin(1+i%2, 3+i%5, 2), Release: int64(3 * i),
			Profit: stepFn(t, float64(1+i%7), 60+int64(i%3)*20),
		})
	}
	sRes, err := sim.Run(sim.Config{M: 8}, jobs, newS(t, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	ncRes, err := sim.Run(sim.Config{M: 8}, jobs, newNC(t, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if ncRes.TotalProfit > sRes.TotalProfit {
		t.Logf("note: NC (%v) beat S (%v) on this instance — allowed, just unusual",
			ncRes.TotalProfit, sRes.TotalProfit)
	}
	if ncRes.TotalProfit <= 0 {
		t.Error("NC earned nothing")
	}
}

func TestNCPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSchedulerNC(Options{Params: Params{Epsilon: -1}})
}
