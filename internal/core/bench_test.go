package core_test

import (
	"fmt"
	"testing"

	"dagsched/internal/core"
	"dagsched/internal/profit"
	"dagsched/internal/sim"
)

// admissionView builds a chain-shaped job view (W = L, so allotment 1 and
// x = L) whose density is value/L. Deadlines are far away, so every job is
// δ-good and weights are tiny enough that condition (2) never rejects: the
// benchmark isolates the cost of the admission query itself, not its verdict.
func admissionView(id int, value float64) sim.JobView {
	const deadline = 1_000_000_000
	fn, err := profit.NewStep(value, deadline)
	if err != nil {
		panic(err)
	}
	return sim.JobView{ID: id, Release: 0, W: 100, L: 100, Profit: fn}
}

// benchAdmission measures one OnArrival+OnExpire round trip against a Q
// already holding n live jobs with distinct densities. The probe's density
// sits below every queued job's, so the condition-(2) check must step past
// the entire higher-density prefix of Q — the component of the admission
// query that scales with queue length.
func benchAdmission(b *testing.B, n int) {
	s := core.NewSchedulerS(core.Options{Params: core.MustParams(1)})
	s.Init(sim.Env{M: 8, Speed: 1})
	// Prefill in density-descending order: each arrival tops the queue, so
	// setup stays near-linear in n.
	for i := 0; i < n; i++ {
		s.OnArrival(0, admissionView(i, float64(n-i)))
	}
	if q, _ := s.QueueSizes(); q != n {
		b.Fatalf("prefill admitted %d of %d jobs", q, n)
	}
	probe := admissionView(n, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnArrival(0, probe)
		s.OnExpire(0, probe.ID)
	}
}

func BenchmarkAdmission(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchAdmission(b, n) })
	}
}
