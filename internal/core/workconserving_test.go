package core

import (
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/sim"
)

func newSWC(t *testing.T, eps float64) *SchedulerS {
	t.Helper()
	return NewSchedulerS(Options{Params: MustParams(eps), WorkConserving: true})
}

func TestWCNameSuffix(t *testing.T) {
	if got := newSWC(t, 1).Name(); got != "paper-S(eps=1)+wc" {
		t.Errorf("Name = %q", got)
	}
}

func TestWCSingleWideJobUsesWholeMachine(t *testing.T) {
	// Block(32,1) with a lazy deadline: the paper allotment is small, but
	// the work-conserving variant should flood all 8 processors and finish
	// in ~4 ticks instead of ~32/alloc.
	j := func() *sim.Job {
		return &sim.Job{ID: 1, Graph: dag.Block(32, 1), Release: 0, Profit: stepFn(t, 1, 200)}
	}
	plain, err := sim.Run(sim.Config{M: 8}, []*sim.Job{j()}, newS(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	wc, err := sim.Run(sim.Config{M: 8}, []*sim.Job{j()}, newSWC(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if wc.Jobs[0].CompletedAt != 4 {
		t.Errorf("wc completed at %d, want 4 (32 unit nodes / 8 procs)", wc.Jobs[0].CompletedAt)
	}
	if wc.Jobs[0].CompletedAt >= plain.Jobs[0].CompletedAt {
		t.Errorf("wc (%d) not faster than plain (%d)", wc.Jobs[0].CompletedAt, plain.Jobs[0].CompletedAt)
	}
	if wc.IdleProcTicks != 0 {
		t.Errorf("wc idled %d proc-ticks on a wide ready set", wc.IdleProcTicks)
	}
}

func TestWCNeverWorseOnProfit(t *testing.T) {
	// Same admission decisions, strictly more progress: on a batch of
	// identical jobs the work-conserving variant must earn at least as much.
	var jobs []*sim.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, &sim.Job{ID: i, Graph: dag.Block(8, 2), Release: int64(3 * i), Profit: stepFn(t, 1, 14)})
	}
	plain, err := sim.Run(sim.Config{M: 4}, jobs, newS(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	wc, err := sim.Run(sim.Config{M: 4}, jobs, newSWC(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if wc.TotalProfit < plain.TotalProfit {
		t.Errorf("wc profit %v < plain %v", wc.TotalProfit, plain.TotalProfit)
	}
}

func TestWCLeftoverProcessorsGoToDensestJob(t *testing.T) {
	// Two jobs with alloc 2 on m=5: the paper pass leaves one processor
	// idle every tick; wc tops up the denser job. Idle time must drop (the
	// tail, where fewer ready nodes than processors remain, still idles).
	mk := func() []*sim.Job {
		return []*sim.Job{
			{ID: 1, Graph: dag.Block(16, 1), Release: 0, Profit: stepFn(t, 1, 14)},
			{ID: 2, Graph: dag.Block(16, 1), Release: 0, Profit: stepFn(t, 100, 14)},
		}
	}
	plain, err := sim.Run(sim.Config{M: 5}, mk(), newS(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	wc, err := sim.Run(sim.Config{M: 5}, mk(), newSWC(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if wc.IdleProcTicks >= plain.IdleProcTicks {
		t.Errorf("wc idle %d not below plain idle %d", wc.IdleProcTicks, plain.IdleProcTicks)
	}
	if wc.Ticks >= plain.Ticks {
		t.Errorf("wc makespan %d not below plain %d", wc.Ticks, plain.Ticks)
	}
}

func TestWCAdmissionRulesUnchanged(t *testing.T) {
	// The wc variant changes only execution, not admission *rules*: a job
	// that cannot be δ-good (span exceeds the deadline window) must never
	// start under either variant.
	trap := dag.Chain(30, 1) // L = W = 30
	jobs := []*sim.Job{
		{ID: 1, Graph: trap, Release: 0, Profit: stepFn(t, 99, 20)}, // D < L
		{ID: 2, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 1, 30)},
	}
	for _, sched := range []*SchedulerS{newS(t, 1), newSWC(t, 1)} {
		res, err := sim.Run(sim.Config{M: 4}, jobs, sched)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := sched.Started(); n != 1 {
			t.Errorf("%s: started %d, want 1 (trap must stay out)", sched.Name(), n)
		}
		if res.TotalProfit != 1 {
			t.Errorf("%s: profit %v, want 1", sched.Name(), res.TotalProfit)
		}
	}
}

func TestWCCompletesEarlierCanAdmitMore(t *testing.T) {
	// Faster completion can flip a δ-fresh decision: the probe that is
	// stale under plain S (blocker finishes at 14, 30−14 < 20) becomes
	// fresh under wc (blocker finishes at 10, 30−10 ≥ 20). This is the
	// intended benefit of the extension, pinned as behaviour.
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Block(19, 2), Release: 0, Profit: stepFn(t, 42, 21)},
		{ID: 2, Graph: dag.Block(8, 2), Release: 0, Profit: stepFn(t, 8, 30)},
	}
	plain := newS(t, 1)
	if _, err := sim.Run(sim.Config{M: 4}, jobs, plain); err != nil {
		t.Fatal(err)
	}
	wc := newSWC(t, 1)
	res, err := sim.Run(sim.Config{M: 4}, jobs, wc)
	if err != nil {
		t.Fatal(err)
	}
	np, _ := plain.Started()
	nw, _ := wc.Started()
	if np != 1 || nw != 2 {
		t.Errorf("started: plain %d (want 1), wc %d (want 2)", np, nw)
	}
	if res.TotalProfit != 50 {
		t.Errorf("wc profit = %v, want 50", res.TotalProfit)
	}
}

func TestWCInvariantStillHolds(t *testing.T) {
	var jobs []*sim.Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, &sim.Job{ID: i, Graph: dag.Block(8, 2), Release: int64(i), Profit: stepFn(t, float64(1+i%5), 14)})
	}
	ic := &invariantChecker{SchedulerS: newSWC(t, 1), t: t}
	if _, err := sim.Run(sim.Config{M: 8}, jobs, ic); err != nil {
		t.Fatal(err)
	}
}
