package core

import (
	"testing"

	"dagsched/internal/sim"
)

// TestAdmissionMatchesOnArrival checks the standalone query predicts exactly
// what OnArrival then does, and that the query itself never mutates state.
func TestAdmissionMatchesOnArrival(t *testing.T) {
	s := newS(t, 1.0)
	s.Init(sim.Env{M: 4, Speed: 1})

	views := []sim.JobView{
		view(t, 1, 32, 4, 0, 40, 10), // δ-good, empty bands → admit
		view(t, 2, 100, 2, 0, 12, 8), // needs more than it can get → not δ-good
		view(t, 3, 32, 4, 0, 40, 10), // same shape as job 1
		view(t, 4, 32, 4, 0, 40, 10), // keeps loading the same band
		view(t, 5, 32, 4, 0, 40, 10),
		view(t, 6, 32, 4, 0, 40, 10),
	}
	for _, v := range views {
		d := s.Admission(v)
		// Query twice: the second answer must be identical (no side effects).
		if d2 := s.Admission(v); d2 != d {
			t.Fatalf("job %d: repeated Admission differs: %+v vs %+v", v.ID, d, d2)
		}
		q0, p0 := s.QueueSizes()
		s.OnArrival(0, v)
		q1, p1 := s.QueueSizes()
		admitted := q1 == q0+1
		if admitted != d.Admit {
			t.Fatalf("job %d: Admission said admit=%v but OnArrival grew Q %d→%d P %d→%d",
				v.ID, d.Admit, q0, q1, p0, p1)
		}
		if d.Admit && d.Reason != "" {
			t.Fatalf("job %d: admitted with reason %q", v.ID, d.Reason)
		}
		if !d.Admit && d.Reason == "" {
			t.Fatalf("job %d: rejected without a reason", v.ID)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}

	// The not-δ-good case must be named as such.
	if d := s.Admission(view(t, 99, 100, 2, 0, 12, 8)); d.Admit || d.Reason != "not-delta-good" {
		t.Fatalf("infeasible job: %+v", d)
	}
}

// TestAdmissionBandFull loads one density band to capacity and checks the
// query reports band-full for the next same-band job.
func TestAdmissionBandFull(t *testing.T) {
	s := newS(t, 1.0)
	s.Init(sim.Env{M: 2, Speed: 1})

	// Each clone is δ-good with band weight 1 (alloc 1, x = 20, window 20),
	// against b·m = sqrt(1.5/2)·2 ≈ 1.73 — so the band holds one and the
	// second must be turned away.
	rejected := false
	for id := 1; id <= 8; id++ {
		v := view(t, id, 20, 4, 0, 30, 10)
		d := s.Admission(v)
		if !d.Admit {
			if d.Reason != "band-full" {
				t.Fatalf("job %d rejected for %q, want band-full", id, d.Reason)
			}
			rejected = true
			break
		}
		s.OnArrival(0, v)
	}
	if !rejected {
		t.Fatal("band never filled; test workload too light")
	}
}

// TestAdmissionPlanAgrees checks the embedded plan equals Plan().
func TestAdmissionPlanAgrees(t *testing.T) {
	s := newS(t, 1.0)
	s.Init(sim.Env{M: 8, Speed: 1})
	v := view(t, 1, 64, 8, 0, 30, 12)
	if got, want := s.Admission(v).Plan, s.Plan(v); got != want {
		t.Fatalf("Admission plan %+v != Plan %+v", got, want)
	}
}
