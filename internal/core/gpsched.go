package core

import (
	"fmt"
	"math"
	"sort"

	"dagsched/internal/queue"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
)

// SchedulerGP is the paper's Section 5 algorithm for general non-increasing
// profit functions. On arrival it computes the allotment n_i from the
// profit's flat prefix x*, then searches for the minimal valid deadline D_i:
// a deadline is valid when at least (1+δ)·x_i time steps in [r_i, r_i+D_i)
// pass the per-step band condition against the jobs already assigned to
// those steps. The chosen steps become the job's slot set I_i, the only
// steps where it may execute. Each tick, the jobs assigned to that tick run
// in density order, each granted its full allotment while processors remain.
//
// Deviation from the paper (documented in DESIGN.md): the paper searches
// every potential deadline; for profit families that change value at every
// integer tick (linear or exponential decay) that is Θ(horizon²) per job, so
// after each failed constant-value segment this implementation advances the
// candidate deadline geometrically by (1+δ/2). The assigned deadline is
// therefore minimal up to a (1+δ/2) factor, which perturbs the obtained
// profit by at most the profit drop across that factor.
type SchedulerGP struct {
	opts  Options
	m     int
	speed float64

	jobs  map[int]*gpJob
	slots map[int64][]queue.Item // J(t): assignments per time step, density-descending
	tick  int64                  // last Assign tick (for pruning)

	assigned   int     // jobs that received a slot assignment
	assignedPr float64 // Σ p_i(D_i) over assigned jobs

	tel *telemetry.Recorder // nil unless a run recorder is attached
}

// gpJob is SchedulerGP's per-job bookkeeping.
type gpJob struct {
	view    sim.JobView
	alloc   int
	x       float64
	weight  float64 // band weight: alloc·x·(1+2δ)/x* = the paper's n_i when exact
	density float64 // v_i = p_i(D_i)/(x_i·alloc)
	deadln  int64   // assigned relative deadline D_i (0 when unschedulable)
	slots   []int64 // assigned absolute time steps, ascending
}

// NewSchedulerGP returns a configured general-profit scheduler. It panics on
// invalid parameters.
func NewSchedulerGP(opts Options) *SchedulerGP {
	if err := opts.Params.Validate(); err != nil {
		panic(err)
	}
	return &SchedulerGP{opts: opts}
}

// Name implements sim.Scheduler.
func (s *SchedulerGP) Name() string {
	n := fmt.Sprintf("paper-GP(eps=%g)", s.opts.Params.Epsilon)
	if s.opts.WorkConserving {
		n += "+wc"
	}
	return n
}

// Init implements sim.Scheduler.
func (s *SchedulerGP) Init(env sim.Env) {
	s.m = env.M
	s.speed = env.Speed
	s.jobs = make(map[int]*gpJob)
	s.slots = make(map[int64][]queue.Item)
	s.tick = 0
	s.assigned = 0
	s.assignedPr = 0
}

// SetTelemetry implements telemetry.Instrumentable.
func (s *SchedulerGP) SetTelemetry(rec *telemetry.Recorder) { s.tel = rec }

// Assigned returns how many jobs received slot assignments and the total
// profit S would earn by meeting every assigned deadline (the ||J|| of
// Lemma 17's right-hand side).
func (s *SchedulerGP) Assigned() (count int, totalProfit float64) {
	return s.assigned, s.assignedPr
}

// AssignedDeadline returns the relative deadline S assigned to a job, or
// false if the job is unknown or received no assignment.
func (s *SchedulerGP) AssignedDeadline(jobID int) (int64, bool) {
	j, ok := s.jobs[jobID]
	if !ok || j.deadln == 0 {
		return 0, false
	}
	return j.deadln, true
}

// OnArrival implements sim.Scheduler: compute the allotment from the flat
// prefix, search the minimal valid deadline, and claim its slot set.
func (s *SchedulerGP) OnArrival(now int64, v sim.JobView) {
	par := s.opts.Params
	w := float64(v.W) / s.speed
	l := float64(v.L) / s.speed
	xStar := float64(v.Profit.FlatUntil())

	j := &gpJob{view: v}
	s.jobs[v.ID] = j

	// Allotment from x*: n_i = (W−L)/(x*/(1+2δ) − L).
	denom := xStar/(1+2*par.Delta) - l
	switch {
	case w == l:
		j.alloc = 1
	case denom <= 0:
		// x* violates the Theorem 3 assumption margin; the job cannot be
		// δ-good at any allotment. Leave it unscheduled.
		if s.tel != nil {
			ev := telemetry.JobEvent(now, telemetry.KindReject, v.ID)
			ev.Why = "unschedulable"
			s.tel.Emit(ev)
		}
		return
	default:
		a := int(math.Ceil((w - l) / denom))
		if a < 1 {
			a = 1
		}
		if a > s.m {
			a = s.m
		}
		j.alloc = a
	}
	j.x = (w-l)/float64(j.alloc) + l
	// Time-averaged processor demand over the x*/(1+2δ) window; equals the
	// paper's real-valued n_i whenever no integral rounding was needed (see
	// SchedulerS.computeInfo for the rationale).
	j.weight = float64(j.alloc) * j.x * (1 + 2*par.Delta) / xStar

	d, slots, ok := s.findAssignment(now, v, j)
	if !ok {
		if s.tel != nil {
			ev := telemetry.JobEvent(now, telemetry.KindReject, v.ID)
			ev.Why = "unschedulable"
			s.tel.Emit(ev)
		}
		return
	}
	j.deadln = d
	j.slots = slots
	j.density = v.Profit.At(d) / (j.x * float64(j.alloc))
	it := queue.Item{ID: v.ID, Density: j.density, Weight: j.weight}
	for _, t := range slots {
		s.insertSlot(t, it)
	}
	s.assigned++
	s.assignedPr += v.Profit.At(d)
	if s.tel != nil {
		ev := telemetry.JobEvent(now, telemetry.KindSlotAssign, v.ID)
		ev.Procs = j.alloc
		ev.Value = float64(d)
		s.tel.Emit(ev)
	}
}

// findAssignment searches candidate deadlines for the minimal valid one and
// returns it with the first ceil((1+δ)x) admissible steps in its window.
func (s *SchedulerGP) findAssignment(now int64, v sim.JobView, j *gpJob) (int64, []int64, bool) {
	par := s.opts.Params
	l := float64(v.L) / s.speed
	need := int64(math.Ceil((1 + par.Delta) * j.x))
	if need < 1 {
		need = 1
	}
	xa := j.x * float64(j.alloc)

	dMin := int64(math.Floor((1+par.Epsilon)*l)) + 1
	if dMin < 1 {
		dMin = 1
	}
	maxD := v.Profit.SupportEnd() - 1 // last deadline with positive profit

	for segStart := dMin; segStart <= maxD; {
		val := v.Profit.At(segStart)
		if val <= 0 {
			return 0, nil, false
		}
		segEnd := s.segmentEnd(v, segStart, maxD, val)
		dens := val / xa
		// Scan steps in [now, now+segEnd) for admissibility under dens.
		var picked []int64
		for t := now; t < now+segEnd && int64(len(picked)) < need; t++ {
			if s.slotAdmissible(t, dens, j.weight) {
				picked = append(picked, t)
			}
		}
		if int64(len(picked)) == need {
			d := picked[need-1] - now + 1
			if d < segStart {
				d = segStart
			}
			return d, picked, true
		}
		// Failed segment: advance. ExactSearch moves to the next value
		// segment (the paper's full scan); otherwise skip geometrically to
		// bound the search on continuously-decaying profits.
		next := segEnd + 1
		if !s.opts.ExactSearch {
			if skip := int64(math.Ceil(float64(segStart) * (1 + par.Delta/2))); skip > next {
				next = skip
			}
		}
		segStart = next
	}
	return 0, nil, false
}

// segmentEnd returns the largest D in [segStart, maxD] with
// v.Profit.At(D) == val, by galloping + binary search (the function is
// non-increasing, so the equal-value region is contiguous).
func (s *SchedulerGP) segmentEnd(v sim.JobView, segStart, maxD int64, val float64) int64 {
	lo, hi := segStart, segStart
	step := int64(1)
	for hi < maxD && v.Profit.At(hi+step) == val {
		hi += step
		step *= 2
		if hi+step > maxD {
			step = maxD - hi
			if step == 0 {
				break
			}
		}
	}
	// Invariant: At(hi) == val; find the boundary in (hi, min(hi+step, maxD)].
	end := hi + step
	if end > maxD {
		end = maxD
	}
	for hi < end {
		mid := (hi + end + 1) / 2
		if v.Profit.At(mid) == val {
			hi = mid
		} else {
			end = mid - 1
		}
	}
	_ = lo
	return hi
}

// slotAdmissible checks the per-step band condition for adding a job with
// the given density and band weight to time step t: for every job J_j
// already assigned to t (and the candidate), the total weight with density
// in [v_j, c·v_j) must stay ≤ b·m.
func (s *SchedulerGP) slotAdmissible(t int64, dens, weight float64) bool {
	par := s.opts.Params
	bm := par.B() * float64(s.m)
	items := s.slots[t]
	// Candidate's own band.
	sum := weight
	for _, it := range items {
		if it.Density >= dens && it.Density < par.C*dens {
			sum += it.Weight
		}
	}
	if sum > bm {
		return false
	}
	// Bands of assigned jobs whose band contains the candidate's density.
	for _, it := range items {
		if !(it.Density <= dens && dens < par.C*it.Density) {
			continue
		}
		bandSum := weight
		for _, other := range items {
			if other.Density >= it.Density && other.Density < par.C*it.Density {
				bandSum += other.Weight
			}
		}
		if bandSum > bm {
			return false
		}
	}
	return true
}

// insertSlot adds an item to J(t), keeping density-descending order.
func (s *SchedulerGP) insertSlot(t int64, it queue.Item) {
	items := s.slots[t]
	i := sort.Search(len(items), func(i int) bool {
		if items[i].Density != it.Density {
			return items[i].Density < it.Density
		}
		return items[i].ID > it.ID
	})
	items = append(items, queue.Item{})
	copy(items[i+1:], items[i:])
	items[i] = it
	s.slots[t] = items
}

// removeFromFutureSlots erases a finished or expired job's claims at steps
// ≥ from, freeing band capacity for later arrivals.
func (s *SchedulerGP) removeFromFutureSlots(j *gpJob, from int64) {
	for _, t := range j.slots {
		if t < from {
			continue
		}
		items := s.slots[t]
		for i, it := range items {
			if it.ID == j.view.ID {
				s.slots[t] = append(items[:i], items[i+1:]...)
				break
			}
		}
		if len(s.slots[t]) == 0 {
			delete(s.slots, t)
		}
	}
}

// OnCompletion implements sim.Scheduler.
func (s *SchedulerGP) OnCompletion(now int64, jobID int) {
	if j, ok := s.jobs[jobID]; ok {
		s.removeFromFutureSlots(j, now+1)
		delete(s.jobs, jobID)
	}
}

// OnExpire implements sim.Scheduler.
func (s *SchedulerGP) OnExpire(now int64, jobID int) {
	if j, ok := s.jobs[jobID]; ok {
		s.removeFromFutureSlots(j, now)
		delete(s.jobs, jobID)
	}
}

// Assign implements sim.Scheduler: run the jobs assigned to this tick in
// density order, granting each its allotment while processors remain. With
// Options.WorkConserving, leftover processors then go to any live assigned
// job with spare ready nodes (density order) — the slot structure still
// decides admission and priority, but capacity is never parked.
func (s *SchedulerGP) Assign(t int64, view sim.AssignView, dst []sim.Alloc) []sim.Alloc {
	s.pruneBefore(t)
	free := s.m
	base := len(dst)
	for _, it := range s.slots[t] {
		if free == 0 {
			break
		}
		j, ok := s.jobs[it.ID]
		if !ok {
			continue
		}
		if free >= j.alloc {
			dst = append(dst, sim.Alloc{JobID: it.ID, Procs: j.alloc})
			free -= j.alloc
		}
	}
	if s.opts.WorkConserving && free > 0 {
		dst = s.topUp(view, dst, base, free)
	}
	return dst
}

// topUp distributes leftover processors across all live assigned jobs in
// density order, up to each job's ready-node count.
func (s *SchedulerGP) topUp(view sim.AssignView, dst []sim.Alloc, base, free int) []sim.Alloc {
	granted := make(map[int]int, len(dst)-base)
	for _, a := range dst[base:] {
		g := a.Procs
		if r := view.ReadyCount(a.JobID); r < g {
			g = r
			free += a.Procs - r
		}
		granted[a.JobID] = g
	}
	// Live assigned jobs in density-descending order (deterministic: ties
	// by ID).
	live := make([]*gpJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.deadln > 0 {
			live = append(live, j)
		}
	}
	sort.Slice(live, func(i, k int) bool {
		if live[i].density != live[k].density {
			return live[i].density > live[k].density
		}
		return live[i].view.ID < live[k].view.ID
	})
	for _, j := range live {
		if free == 0 {
			break
		}
		extra := view.ReadyCount(j.view.ID) - granted[j.view.ID]
		if extra > free {
			extra = free
		}
		if extra > 0 {
			granted[j.view.ID] += extra
			free -= extra
		}
	}
	dst = dst[:base]
	for _, j := range live {
		if p := granted[j.view.ID]; p > 0 {
			dst = append(dst, sim.Alloc{JobID: j.view.ID, Procs: p})
		}
	}
	return dst
}

// pruneBefore drops slot sets for ticks that have passed. Ticks advance
// monotonically, so each key is deleted once.
func (s *SchedulerGP) pruneBefore(t int64) {
	if t <= s.tick {
		return
	}
	for k := s.tick; k < t; k++ {
		delete(s.slots, k)
	}
	s.tick = t
}

// CheckSlotInvariants verifies Lemma 15 by recomputation: at every assigned
// future step, every band of J(t) holds at most b·m + tol allotment.
func (s *SchedulerGP) CheckSlotInvariants() error {
	par := s.opts.Params
	bm := par.B()*float64(s.m) + 1e-9
	for t, items := range s.slots {
		for _, ji := range items {
			var sum float64
			for _, jj := range items {
				if jj.Density >= ji.Density && jj.Density < par.C*ji.Density {
					sum += jj.Weight
				}
			}
			if sum > bm {
				return fmt.Errorf("core: slot %d band [%g, %g) holds %g > b·m = %g",
					t, ji.Density, par.C*ji.Density, sum, bm)
			}
		}
	}
	return nil
}

var _ sim.Scheduler = (*SchedulerGP)(nil)
