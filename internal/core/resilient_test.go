package core

import (
	"reflect"
	"testing"

	"dagsched/internal/faults"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

func resilientWorkload(t *testing.T, seed int64) []*sim.Job {
	t.Helper()
	in, err := workload.Generate(workload.Config{
		Seed: seed, N: 40, M: 8, Eps: 1, SlackSpread: 1, Load: 1.5, MaxProfit: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in.Jobs
}

// Without fault injection the CapacityAware callbacks never fire beyond the
// initial capacity, so the resilient scheduler must behave exactly like the
// plain one.
func TestResilientIdenticalWithoutFaults(t *testing.T) {
	plain, err := sim.Run(sim.Config{M: 8}, resilientWorkload(t, 1),
		NewSchedulerS(Options{Params: MustParams(1)}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{M: 8}, resilientWorkload(t, 1),
		NewSchedulerS(Options{Params: MustParams(1), Resilient: true}))
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalProfit != res.TotalProfit || plain.Completed != res.Completed ||
		plain.BusyProcTicks != res.BusyProcTicks || plain.Ticks != res.Ticks {
		t.Errorf("resilient diverged on a fault-free run: profit %v vs %v, completed %d vs %d",
			plain.TotalProfit, res.TotalProfit, plain.Completed, res.Completed)
	}
	if !reflect.DeepEqual(plain.Jobs, res.Jobs) {
		t.Error("per-job stats diverged on a fault-free run")
	}
}

// Acceptance criterion of the fault-injection work: on at least one faulty
// scenario, resilient S strictly beats plain S in completed profit. The
// scenario space below is fixed, so this is deterministic.
func TestResilientBeatsPlainUnderFaults(t *testing.T) {
	fc := faults.Config{MTBF: 60, MTTR: 25, CrashRate: 0.02, StragglerFrac: 0.2, StragglerSlow: 2}
	wins, losses := 0, 0
	for wseed := int64(1); wseed <= 3; wseed++ {
		for fseed := int64(1); fseed <= 3; fseed++ {
			f := fc
			f.Seed = fseed
			cfg := sim.Config{M: 8, Faults: &f}
			plain, err := sim.Run(cfg, resilientWorkload(t, wseed),
				NewSchedulerS(Options{Params: MustParams(1)}))
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(cfg, resilientWorkload(t, wseed),
				NewSchedulerS(Options{Params: MustParams(1), Resilient: true}))
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case res.TotalProfit > plain.TotalProfit:
				wins++
			case res.TotalProfit < plain.TotalProfit:
				losses++
			}
			t.Logf("wseed=%d fseed=%d: plain %.1f, resilient %.1f",
				wseed, fseed, plain.TotalProfit, res.TotalProfit)
		}
	}
	if wins == 0 {
		t.Fatalf("resilient S never strictly beat plain S (losses: %d)", losses)
	}
}

// Under faults the resilient run must stay deterministic: same seeds, same
// result.
func TestResilientDeterministicUnderFaults(t *testing.T) {
	cfg := sim.Config{M: 8, Faults: &faults.Config{Seed: 2, MTBF: 60, MTTR: 25, CrashRate: 0.02}}
	a, err := sim.Run(cfg, resilientWorkload(t, 2),
		NewSchedulerS(Options{Params: MustParams(1), Resilient: true}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(cfg, resilientWorkload(t, 2),
		NewSchedulerS(Options{Params: MustParams(1), Resilient: true}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("resilient faulty run not deterministic")
	}
}
