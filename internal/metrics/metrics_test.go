package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesStats(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Std(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("Std = %v, want ≈2.138", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.CI95() <= 0 {
		t.Errorf("CI95 = %v", s.CI95())
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Std() != 0 || s.CI95() != 0 {
		t.Error("empty series should return zeros")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}

func TestSeriesSingleSample(t *testing.T) {
	var s Series
	s.Add(3)
	if s.Mean() != 3 || s.Std() != 0 {
		t.Errorf("single sample: mean=%v std=%v", s.Mean(), s.Std())
	}
}

func TestSeriesCI95SmallN(t *testing.T) {
	// A confidence interval needs at least two samples; below that it must
	// be 0, not NaN (n-1 division) or a spurious width.
	var s Series
	if got := s.CI95(); got != 0 {
		t.Errorf("CI95 with n=0 = %v, want 0", got)
	}
	s.Add(7)
	if got := s.CI95(); got != 0 {
		t.Errorf("CI95 with n=1 = %v, want 0", got)
	}
	s.Add(9)
	if got := s.CI95(); !(got > 0) || math.IsNaN(got) {
		t.Errorf("CI95 with n=2 = %v, want a positive finite width", got)
	}
}

func TestTableRows(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("x", 1.5)
	tb.AddRow("y", 2.0)
	rows := tb.Rows()
	if len(rows) != 2 || rows[0][0] != "x" || rows[0][1] != "1.500" || rows[1][1] != "2" {
		t.Fatalf("Rows = %v", rows)
	}
	// Rows must be a deep copy: mutating it must not corrupt the table.
	rows[0][0] = "mutated"
	rows[1] = nil
	if got := tb.Rows(); got[0][0] != "x" || got[1][0] != "y" {
		t.Errorf("Rows aliases table storage: %v", got)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Add("profit", 10)
	c.Add("profit", 20)
	c.Add("ratio", 1.5)
	if got := c.Get("profit").Mean(); got != 15 {
		t.Errorf("profit mean = %v", got)
	}
	if got := c.Get("missing").N(); got != 0 {
		t.Errorf("missing series N = %d", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "profit" || names[1] != "ratio" {
		t.Errorf("Names = %v", names)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42.0)
	out := tb.Render()
	if !strings.Contains(out, "== demo ==") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") || !strings.Contains(out, "42") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("x", 1.0)
	csv := tb.CSV()
	want := "a,b\nx,1\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1, "1"},
		{1.5, "1.500"},
		{123.456, "123.5"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{math.NaN(), "nan"},
		{0, "0"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPropMeanWithinMinMax(t *testing.T) {
	f := func(vals []float64) bool {
		var s Series
		ok := true
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue // avoid float overflow in the sum; not the property under test
			}
			s.Add(v)
			ok = false
		}
		if ok || s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("x", 1.0)
	md := tb.Markdown()
	for _, want := range []string{"**demo**", "| a | b |", "|---|---|", "| x | 1 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestQuantile(t *testing.T) {
	var s Series
	for _, v := range []float64{4, 1, 3, 2} { // unsorted on purpose
		s.Add(v)
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3.0, 2},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Out-of-range q clamps; empty series returns 0.
	if s.Quantile(-1) != 1 || s.Quantile(2) != 4 {
		t.Error("q clamping wrong")
	}
	var empty Series
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile != 0")
	}
	// Original order preserved.
	if s.values[0] != 4 {
		t.Error("Quantile reordered the series")
	}
}

func TestPropQuantileMonotone(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		var s Series
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		a, b := math.Abs(q1)-math.Floor(math.Abs(q1)), math.Abs(q2)-math.Floor(math.Abs(q2))
		if a > b {
			a, b = b, a
		}
		return s.Quantile(a) <= s.Quantile(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
