// Package metrics aggregates simulation results across seeds and renders
// the experiment tables. It is deliberately dependency-light: experiments
// produce float samples keyed by metric name; tables render aligned text
// (the form the benchmark harness prints) and CSV.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series accumulates samples of one metric.
type Series struct {
	values []float64
}

// Add appends a sample.
func (s *Series) Add(v float64) { s.values = append(s.values, v) }

// N returns the sample count.
func (s *Series) N() int { return len(s.values) }

// Values returns the samples in insertion order. The slice is owned by the
// series; callers must not mutate it.
func (s *Series) Values() []float64 { return s.values }

// Mean returns the sample mean (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Std returns the sample standard deviation (n−1 denominator; 0 when n < 2).
func (s *Series) Std() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval on the mean.
func (s *Series) CI95() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(n))
}

// Min returns the smallest sample (+Inf for an empty series).
func (s *Series) Min() float64 {
	out := math.Inf(1)
	for _, v := range s.values {
		if v < out {
			out = v
		}
	}
	return out
}

// Max returns the largest sample (−Inf for an empty series).
func (s *Series) Max() float64 {
	out := math.Inf(-1)
	for _, v := range s.values {
		if v > out {
			out = v
		}
	}
	return out
}

// Collector groups series by metric name.
type Collector struct {
	byName map[string]*Series
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{byName: make(map[string]*Series)} }

// Add records a sample for a named metric.
func (c *Collector) Add(name string, v float64) {
	s, ok := c.byName[name]
	if !ok {
		s = &Series{}
		c.byName[name] = s
	}
	s.Add(v)
}

// Get returns the series for name (empty series if absent).
func (c *Collector) Get(name string) *Series {
	if s, ok := c.byName[name]; ok {
		return s
	}
	return &Series{}
}

// Names returns the metric names in sorted order.
func (c *Collector) Names() []string {
	out := make([]string, 0, len(c.byName))
	for n := range c.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Table is a rendered experiment table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the formatted data rows, for machine-readable
// export (the -json path of cmd/spaa-bench). Mutating the result does not
// affect the table.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with enough precision to compare.
func FormatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (no quoting; cells must
// not contain commas — experiment output never does).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteString("\n")
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// Markdown returns the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation over
// the sorted samples; 0 for an empty series. The series itself is not
// reordered.
func (s *Series) Quantile(q float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
