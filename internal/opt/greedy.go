package opt

import "sort"

// GreedyLowerBound computes a feasible (hence lower-bound) profit for the
// malleable relaxation: tasks are considered in profit-density order and
// added whenever the set stays interval-capacity feasible, then improved by
// one pass of single-swap local search (try replacing each rejected task
// for each accepted one). It complements ExactSmall on instances too large
// for branch-and-bound: the true malleable optimum lies between
// GreedyLowerBound and the LP/knapsack upper bounds.
func GreedyLowerBound(tasks []Task, m int, speed float64) float64 {
	var cands []Task
	for _, t := range tasks {
		if t.Profit > 0 && t.Feasible(m, speed) {
			cands = append(cands, t)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		di := cands[i].Profit * float64(cands[j].Work)
		dj := cands[j].Profit * float64(cands[i].Work)
		if di != dj {
			return di > dj
		}
		return cands[i].ID < cands[j].ID
	})
	var chosen []Task
	var rejected []Task
	var value float64
	for _, t := range cands {
		trial := append(append([]Task(nil), chosen...), t)
		if feasibleSet(trial, m, speed) {
			chosen = trial
			value += t.Profit
		} else {
			rejected = append(rejected, t)
		}
	}
	// One round of single swaps: replace a chosen task with a rejected one
	// when that increases profit and stays feasible.
	improved := true
	for improved {
		improved = false
		for ri, r := range rejected {
			for ci, c := range chosen {
				if r.Profit <= c.Profit {
					continue
				}
				trial := append([]Task(nil), chosen[:ci]...)
				trial = append(trial, chosen[ci+1:]...)
				trial = append(trial, r)
				if feasibleSet(trial, m, speed) {
					value += r.Profit - c.Profit
					rejected[ri] = c
					chosen = trial
					improved = true
					break
				}
			}
			if improved {
				break
			}
		}
	}
	return value
}
