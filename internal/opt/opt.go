// Package opt computes upper bounds on the offline optimal profit — the
// denominator of every empirical competitive ratio in the experiments.
//
// A DAG job is relaxed to a malleable task: W_i units of preemptible work to
// place in the window [r_i, d_i] on m speed-s processors, with the
// information-theoretic latency floor max(L_i, W_i/m)/s. Every constraint
// used here is necessary for the true DAG problem, so each bound is a
// genuine upper bound on OPT and competitive ratios reported against them
// never flatter the algorithm:
//
//   - Trivial: Σ best-case profit of individually feasible tasks.
//   - IntervalKnapsackBound: tasks whose windows lie inside [a,b] share
//     capacity m·s·(b−a); relax to one fractional knapsack per window and
//     take the minimum over windows.
//   - LPBound: all interval-capacity constraints at once, solved exactly
//     with the internal/lp simplex.
//   - ExactSmall: branch-and-bound over task subsets with the full
//     interval-capacity feasibility test — the exact optimum of the
//     malleable relaxation (intractable beyond ~20 tasks).
package opt

import (
	"fmt"
	"math"
	"sort"

	"dagsched/internal/lp"
	"dagsched/internal/sim"
)

// Task is the malleable relaxation of one job.
type Task struct {
	ID       int
	Release  int64
	Deadline int64 // absolute: last completion time with positive profit
	Work     int64
	Span     int64
	Profit   float64 // best obtainable profit (at the latency floor)
}

// Feasible reports whether the task can complete in time even alone on the
// whole machine: latency floor ≤ relative deadline.
func (t Task) Feasible(m int, speed float64) bool {
	return t.latencyFloor(m, speed) <= float64(t.Deadline-t.Release)
}

// latencyFloor returns max(L, W/m)/speed.
func (t Task) latencyFloor(m int, speed float64) float64 {
	lb := float64(t.Span)
	if w := float64(t.Work) / float64(m); w > lb {
		lb = w
	}
	return lb / speed
}

// TasksFromJobs relaxes sim jobs to tasks for an m-processor speed-s
// machine. Infeasible tasks keep Profit 0 so every bound ignores them.
func TasksFromJobs(jobs []*sim.Job, m int, speed float64) []Task {
	tasks := make([]Task, 0, len(jobs))
	for _, j := range jobs {
		t := Task{
			ID:       j.ID,
			Release:  j.Release,
			Deadline: j.AbsDeadline(),
			Work:     j.Graph.TotalWork(),
			Span:     j.Graph.Span(),
		}
		if t.Feasible(m, speed) {
			lb := int64(math.Ceil(t.latencyFloor(m, speed)))
			if lb < 1 {
				lb = 1
			}
			t.Profit = j.Profit.At(lb)
		}
		tasks = append(tasks, t)
	}
	return tasks
}

// Trivial returns Σ Profit over all (feasible) tasks: the weakest valid
// upper bound.
func Trivial(tasks []Task) float64 {
	var s float64
	for _, t := range tasks {
		s += t.Profit
	}
	return s
}

// windows enumerates the candidate capacity windows: every (release a,
// deadline b) pair with a < b drawn from the tasks' event points.
func windows(tasks []Task) [][2]int64 {
	relSet := map[int64]bool{}
	dlSet := map[int64]bool{}
	for _, t := range tasks {
		if t.Profit > 0 {
			relSet[t.Release] = true
			dlSet[t.Deadline] = true
		}
	}
	rels := make([]int64, 0, len(relSet))
	for r := range relSet {
		rels = append(rels, r)
	}
	dls := make([]int64, 0, len(dlSet))
	for d := range dlSet {
		dls = append(dls, d)
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i] < rels[j] })
	sort.Slice(dls, func(i, j int) bool { return dls[i] < dls[j] })
	var out [][2]int64
	for _, a := range rels {
		for _, b := range dls {
			if a < b {
				out = append(out, [2]int64{a, b})
			}
		}
	}
	return out
}

// IntervalKnapsackBound returns min over windows [a,b] of
//
//	knapsack(tasks inside [a,b], capacity m·s·(b−a)) + Σ profit outside,
//
// where the knapsack is fractional (an upper bound on any integral choice).
func IntervalKnapsackBound(tasks []Task, m int, speed float64) float64 {
	best := Trivial(tasks)
	type wp struct {
		work   float64
		profit float64
	}
	for _, w := range windows(tasks) {
		a, b := w[0], w[1]
		capacity := float64(m) * speed * float64(b-a)
		var inside []wp
		outside := 0.0
		for _, t := range tasks {
			if t.Profit == 0 {
				continue
			}
			if t.Release >= a && t.Deadline <= b {
				inside = append(inside, wp{work: float64(t.Work), profit: t.Profit})
			} else {
				outside += t.Profit
			}
		}
		// Fractional knapsack by profit density.
		sort.Slice(inside, func(i, j int) bool {
			return inside[i].profit*inside[j].work > inside[j].profit*inside[i].work
		})
		var got float64
		for _, x := range inside {
			if capacity <= 0 {
				break
			}
			if x.work <= capacity {
				got += x.profit
				capacity -= x.work
			} else {
				got += x.profit * capacity / x.work
				capacity = 0
			}
		}
		if got+outside < best {
			best = got + outside
		}
	}
	return best
}

// LPBound solves the full fractional relaxation:
//
//	max Σ p_i·y_i   s.t.  y_i ∈ [0,1],
//	                      Σ_{[r_i,d_i] ⊆ [a,b]} W_i·y_i ≤ m·s·(b−a)  ∀ windows.
//
// The constraint matrix is dense and quadratic in the number of distinct
// event points, so this is intended for instances up to a few dozen jobs.
func LPBound(tasks []Task, m int, speed float64) (float64, error) {
	var vars []Task
	for _, t := range tasks {
		if t.Profit > 0 {
			vars = append(vars, t)
		}
	}
	if len(vars) == 0 {
		return 0, nil
	}
	n := len(vars)
	p := lp.Problem{C: make([]float64, n)}
	for i, t := range vars {
		p.C[i] = t.Profit
	}
	for i := 0; i < n; i++ { // y_i ≤ 1
		row := make([]float64, n)
		row[i] = 1
		p.A = append(p.A, row)
		p.B = append(p.B, 1)
	}
	for _, w := range windows(vars) {
		a, b := w[0], w[1]
		row := make([]float64, n)
		any := false
		for i, t := range vars {
			if t.Release >= a && t.Deadline <= b {
				row[i] = float64(t.Work)
				any = true
			}
		}
		if !any {
			continue
		}
		p.A = append(p.A, row)
		p.B = append(p.B, float64(m)*speed*float64(b-a))
	}
	sol, err := lp.Solve(p)
	if err != nil {
		return 0, fmt.Errorf("opt: %w", err)
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("opt: LP status %v", sol.Status)
	}
	return sol.Objective, nil
}

// Bound computes the tightest affordable upper bound: ExactSmall when the
// instance is small enough, otherwise min(LPBound, IntervalKnapsackBound)
// when the LP is affordable, otherwise IntervalKnapsackBound.
func Bound(tasks []Task, m int, speed float64) float64 {
	const exactLimit = 16
	const lpLimit = 60
	positive := 0
	for _, t := range tasks {
		if t.Profit > 0 {
			positive++
		}
	}
	if positive <= exactLimit {
		return ExactSmall(tasks, m, speed)
	}
	best := IntervalKnapsackBound(tasks, m, speed)
	if positive <= lpLimit {
		if v, err := LPBound(tasks, m, speed); err == nil && v < best {
			best = v
		}
	}
	return best
}
