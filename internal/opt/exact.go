package opt

import "sort"

// ExactSmall computes the exact optimum of the malleable relaxation by
// branch-and-bound over task subsets: the most profitable subset that passes
// the interval-capacity feasibility test. For the true DAG problem this is
// an upper bound (the test is necessary, not sufficient). Cost is
// exponential in the number of profitable tasks; keep instances ≤ ~20.
func ExactSmall(tasks []Task, m int, speed float64) float64 {
	var vars []Task
	for _, t := range tasks {
		if t.Profit > 0 {
			vars = append(vars, t)
		}
	}
	if len(vars) == 0 {
		return 0
	}
	// High profit first: good incumbents early → aggressive pruning.
	sort.Slice(vars, func(i, j int) bool {
		if vars[i].Profit != vars[j].Profit {
			return vars[i].Profit > vars[j].Profit
		}
		return vars[i].ID < vars[j].ID
	})
	suffix := make([]float64, len(vars)+1)
	for i := len(vars) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + vars[i].Profit
	}
	bb := &bbState{vars: vars, suffix: suffix, m: m, speed: speed}
	bb.search(0, 0)
	return bb.best
}

type bbState struct {
	vars   []Task
	suffix []float64
	m      int
	speed  float64

	chosen []Task
	best   float64
}

func (b *bbState) search(i int, profit float64) {
	if profit > b.best {
		b.best = profit
	}
	if i == len(b.vars) || profit+b.suffix[i] <= b.best {
		return
	}
	// Branch 1: take vars[i] if the set stays feasible.
	b.chosen = append(b.chosen, b.vars[i])
	if feasibleSet(b.chosen, b.m, b.speed) {
		b.search(i+1, profit+b.vars[i].Profit)
	}
	b.chosen = b.chosen[:len(b.chosen)-1]
	// Branch 2: skip it.
	b.search(i+1, profit)
}

// feasibleSet checks the interval-capacity condition: for every window
// [a, b] built from the set's releases and deadlines, the total work of
// tasks whose windows lie inside must fit in m·s·(b−a) processor-ticks.
func feasibleSet(set []Task, m int, speed float64) bool {
	for _, t := range set {
		if !t.Feasible(m, speed) {
			return false
		}
	}
	for _, w := range windows(set) {
		a, b := w[0], w[1]
		var load float64
		for _, t := range set {
			if t.Release >= a && t.Deadline <= b {
				load += float64(t.Work)
			}
		}
		if load > float64(m)*speed*float64(b-a)+1e-9 {
			return false
		}
	}
	return true
}
