package opt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFlowFeasibleBasics(t *testing.T) {
	// Two tasks of work 8 in window [0,10] on m=1: capacity 10 < 16.
	over := []Task{
		task(1, 0, 10, 8, 1, 1),
		task(2, 0, 10, 8, 1, 1),
	}
	if FlowFeasible(over, 1) {
		t.Error("accepted overloaded set")
	}
	if !FlowFeasible(over[:1], 1) {
		t.Error("rejected single feasible task")
	}
	if !FlowFeasible(over, 2) {
		t.Error("rejected set feasible on 2 processors")
	}
}

func TestFlowFeasibleDisjointWindows(t *testing.T) {
	set := []Task{
		task(1, 0, 10, 10, 1, 1),
		task(2, 10, 20, 10, 1, 1),
	}
	if !FlowFeasible(set, 1) {
		t.Error("rejected back-to-back feasible set")
	}
}

func TestFlowFeasibleNestedWindows(t *testing.T) {
	// Inner task steals the middle of the outer task's window.
	set := []Task{
		task(1, 0, 10, 8, 1, 1), // outer: needs 8 of 10
		task(2, 4, 6, 2, 1, 1),  // inner: needs all of [4,6]
	}
	if !FlowFeasible(set, 1) {
		t.Error("rejected feasible nested set (8+2 = 10 exactly)")
	}
	set[0].Work = 9 // now 11 > 10
	if FlowFeasible(set, 1) {
		t.Error("accepted infeasible nested set")
	}
}

func TestFlowFeasibleSpanGate(t *testing.T) {
	// Volume fits but the span exceeds the window: individually infeasible.
	set := []Task{task(1, 0, 10, 5, 20, 1)}
	if FlowFeasible(set, 4) {
		t.Error("accepted span-infeasible task")
	}
}

func TestFlowFeasibleEmpty(t *testing.T) {
	if !FlowFeasible(nil, 1) {
		t.Error("empty set must be feasible")
	}
}

// TestPropFlowMatchesIntervalCondition: for malleable tasks the max-flow
// test and the interval-capacity test are the same predicate. Two
// independent implementations must agree on random sets.
func TestPropFlowMatchesIntervalCondition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		m := 1 + rng.Intn(3)
		set := make([]Task, 0, n)
		for i := 0; i < n; i++ {
			r := rng.Int63n(12)
			d := r + 1 + rng.Int63n(12)
			w := 1 + rng.Int63n(12)
			l := 1 + rng.Int63n(w)
			set = append(set, task(i, r, d, w, l, 1))
		}
		return FlowFeasible(set, m) == feasibleSet(set, m, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
