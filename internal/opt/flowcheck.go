package opt

import (
	"sort"

	"dagsched/internal/flow"
)

// FlowFeasible is the exact schedulability test for a set of preemptive
// malleable tasks on m unit-speed processors, implemented as a max-flow
// saturation check: source → task (capacity W), task → elementary interval
// within its window (capacity W), interval → sink (capacity m·length). The
// set is feasible iff the max flow equals ΣW. For malleable tasks this is
// equivalent to the interval-capacity condition used by ExactSmall
// (feasibleSet); property tests verify the equivalence, giving two
// independent implementations of the bound's core predicate.
//
// Individual latency floors (span/elongation) are checked separately, as in
// feasibleSet.
func FlowFeasible(set []Task, m int) bool {
	if len(set) == 0 {
		return true
	}
	for _, t := range set {
		if !t.Feasible(m, 1) {
			return false
		}
	}
	// Elementary intervals between consecutive event points.
	points := make([]int64, 0, 2*len(set))
	for _, t := range set {
		points = append(points, t.Release, t.Deadline)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	points = dedupe(points)

	g := flow.NewNetwork()
	src := g.AddNode()
	sink := g.AddNode()
	taskNode := g.AddNodes(len(set))
	ivNode := g.AddNodes(len(points) - 1)

	var totalWork int64
	for i, t := range set {
		g.AddEdge(src, taskNode+i, t.Work)
		totalWork += t.Work
	}
	for k := 0; k+1 < len(points); k++ {
		length := points[k+1] - points[k]
		g.AddEdge(ivNode+k, sink, int64(m)*length)
		for i, t := range set {
			if t.Release <= points[k] && points[k+1] <= t.Deadline {
				g.AddEdge(taskNode+i, ivNode+k, t.Work)
			}
		}
	}
	return g.MaxFlow(src, sink) == totalWork
}

func dedupe(sorted []int64) []int64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
