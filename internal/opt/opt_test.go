package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dagsched/internal/dag"
	"dagsched/internal/profit"
	"dagsched/internal/sim"
)

func task(id int, r, d, w, l int64, p float64) Task {
	return Task{ID: id, Release: r, Deadline: d, Work: w, Span: l, Profit: p}
}

func TestTasksFromJobs(t *testing.T) {
	s, err := profit.NewStep(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Block(8, 2), Release: 3, Profit: s}, // W=16 L=2, lb = max(2, 4) = 4 ≤ 8
	}
	tasks := TasksFromJobs(jobs, 4, 1)
	if len(tasks) != 1 {
		t.Fatal("missing task")
	}
	tk := tasks[0]
	if tk.Release != 3 || tk.Deadline != 11 || tk.Work != 16 || tk.Span != 2 {
		t.Errorf("task = %+v", tk)
	}
	if tk.Profit != 10 {
		t.Errorf("profit = %v", tk.Profit)
	}
}

func TestTasksFromJobsInfeasibleGetsZeroProfit(t *testing.T) {
	s, err := profit.NewStep(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Block(8, 2), Release: 0, Profit: s}, // lb = 4 > 3
	}
	tasks := TasksFromJobs(jobs, 4, 1)
	if tasks[0].Profit != 0 {
		t.Errorf("infeasible task has profit %v", tasks[0].Profit)
	}
}

func TestTasksFromJobsSpeedHelps(t *testing.T) {
	s, err := profit.NewStep(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Block(8, 2), Release: 0, Profit: s},
	}
	tasks := TasksFromJobs(jobs, 4, 2) // lb = 4/2 = 2 ≤ 3
	if tasks[0].Profit != 10 {
		t.Errorf("speed-2 task profit = %v, want 10", tasks[0].Profit)
	}
}

func TestTrivial(t *testing.T) {
	tasks := []Task{
		task(1, 0, 10, 5, 1, 3),
		task(2, 0, 10, 5, 1, 4),
		task(3, 0, 10, 5, 1, 0),
	}
	if got := Trivial(tasks); got != 7 {
		t.Errorf("Trivial = %v, want 7", got)
	}
}

func TestExactSmallCapacityLimited(t *testing.T) {
	// Two tasks in the same window [0,10] on m=1: capacity 10, each W=8 →
	// only one fits. Exact picks the more profitable.
	tasks := []Task{
		task(1, 0, 10, 8, 1, 3),
		task(2, 0, 10, 8, 1, 5),
	}
	if got := ExactSmall(tasks, 1, 1); got != 5 {
		t.Errorf("ExactSmall = %v, want 5", got)
	}
}

func TestExactSmallDisjointWindows(t *testing.T) {
	tasks := []Task{
		task(1, 0, 10, 8, 1, 3),
		task(2, 10, 20, 8, 1, 5),
	}
	if got := ExactSmall(tasks, 1, 1); got != 8 {
		t.Errorf("ExactSmall = %v, want 8 (disjoint windows)", got)
	}
}

func TestExactSmallSpeedDoublesCapacity(t *testing.T) {
	tasks := []Task{
		task(1, 0, 10, 8, 1, 3),
		task(2, 0, 10, 8, 1, 5),
	}
	if got := ExactSmall(tasks, 1, 2); got != 8 {
		t.Errorf("ExactSmall speed 2 = %v, want 8", got)
	}
}

func TestLPBoundMatchesExactOnIntegralInstance(t *testing.T) {
	tasks := []Task{
		task(1, 0, 10, 10, 1, 6),
		task(2, 0, 10, 10, 1, 5),
	}
	// m=1, window capacity 10: LP takes task1 fully + task2 at 0 → but the
	// fractional relaxation may split: 6 + 5·0 = 6? Capacity exactly fits
	// one. LP optimum = 6 at y=(1,0)? Fractional: y2 can't be >0 without
	// reducing y1 at worse density. LP = 6.
	got, err := LPBound(tasks, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := ExactSmall(tasks, 1, 1)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("LP = %v, exact = %v", got, want)
	}
}

func TestBoundOrdering(t *testing.T) {
	// Exact ≤ LP ≤ Trivial, and IntervalKnapsack between exact and trivial.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		var tasks []Task
		n := 3 + rng.Intn(6)
		for i := 0; i < n; i++ {
			r := rng.Int63n(20)
			d := r + 2 + rng.Int63n(20)
			w := 1 + rng.Int63n(15)
			l := 1 + rng.Int63n(w)
			tasks = append(tasks, task(i, r, d, w, l, float64(1+rng.Intn(9))))
		}
		m := 1 + rng.Intn(3)
		exact := ExactSmall(tasks, m, 1)
		lpv, err := LPBound(tasks, m, 1)
		if err != nil {
			t.Fatal(err)
		}
		ik := IntervalKnapsackBound(tasks, m, 1)
		triv := Trivial(tasks)
		if exact > lpv+1e-6 {
			t.Errorf("trial %d: exact %v > LP %v", trial, exact, lpv)
		}
		if lpv > triv+1e-6 {
			t.Errorf("trial %d: LP %v > trivial %v", trial, lpv, triv)
		}
		if ik > triv+1e-6 || exact > ik+1e-6 {
			t.Errorf("trial %d: knapsack bound %v outside [exact %v, trivial %v]", trial, ik, exact, triv)
		}
	}
}

func TestPropBoundDominatesAnySchedule(t *testing.T) {
	// Any achievable schedule profit (here: a greedy feasible subset) must
	// be ≤ every bound.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tasks []Task
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			r := rng.Int63n(15)
			d := r + 1 + rng.Int63n(15)
			w := 1 + rng.Int63n(10)
			tasks = append(tasks, task(i, r, d, w, 1, float64(1+rng.Intn(5))))
		}
		m := 1 + rng.Intn(2)
		// Greedy feasible subset by profit.
		var chosen []Task
		var achieved float64
		for _, t := range tasks {
			if t.Profit == 0 || !t.Feasible(m, 1) {
				continue
			}
			trial := append(append([]Task(nil), chosen...), t)
			if feasibleSet(trial, m, 1) {
				chosen = trial
				achieved += t.Profit
			}
		}
		exact := ExactSmall(tasks, m, 1)
		lpv, err := LPBound(tasks, m, 1)
		if err != nil {
			return false
		}
		ik := IntervalKnapsackBound(tasks, m, 1)
		return achieved <= exact+1e-6 && achieved <= lpv+1e-6 && achieved <= ik+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBoundSelectsExactForSmall(t *testing.T) {
	tasks := []Task{
		task(1, 0, 10, 8, 1, 3),
		task(2, 0, 10, 8, 1, 5),
	}
	if got := Bound(tasks, 1, 1); got != 5 {
		t.Errorf("Bound = %v, want exact value 5", got)
	}
}

func TestEmptyInstances(t *testing.T) {
	if got := Trivial(nil); got != 0 {
		t.Errorf("Trivial(nil) = %v", got)
	}
	if got := ExactSmall(nil, 2, 1); got != 0 {
		t.Errorf("ExactSmall(nil) = %v", got)
	}
	if got, err := LPBound(nil, 2, 1); err != nil || got != 0 {
		t.Errorf("LPBound(nil) = %v, %v", got, err)
	}
	if got := IntervalKnapsackBound(nil, 2, 1); got != 0 {
		t.Errorf("IntervalKnapsackBound(nil) = %v", got)
	}
}

func TestGreedyLowerBoundBasics(t *testing.T) {
	tasks := []Task{
		task(1, 0, 10, 8, 1, 3),
		task(2, 0, 10, 8, 1, 5),
	}
	got := GreedyLowerBound(tasks, 1, 1)
	if got != 5 {
		t.Errorf("GreedyLowerBound = %v, want 5", got)
	}
	if got := GreedyLowerBound(nil, 1, 1); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestGreedySwapImproves(t *testing.T) {
	// Density order picks the small cheap task first (density 1 vs 0.9),
	// blocking the big valuable one; the swap pass must fix it.
	tasks := []Task{
		task(1, 0, 10, 2, 1, 2),  // density 1.0
		task(2, 0, 10, 10, 1, 9), // density 0.9, needs the whole window
	}
	got := GreedyLowerBound(tasks, 1, 1)
	if got != 9 {
		t.Errorf("GreedyLowerBound = %v, want 9 after swap", got)
	}
}

func TestPropGreedyBetweenZeroAndExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tasks []Task
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			r := rng.Int63n(15)
			d := r + 1 + rng.Int63n(15)
			w := 1 + rng.Int63n(10)
			tasks = append(tasks, task(i, r, d, w, 1, float64(1+rng.Intn(5))))
		}
		m := 1 + rng.Intn(2)
		lb := GreedyLowerBound(tasks, m, 1)
		exact := ExactSmall(tasks, m, 1)
		return lb >= 0 && lb <= exact+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWindowsEnumeration(t *testing.T) {
	tasks := []Task{
		task(1, 0, 10, 2, 1, 1),
		task(2, 5, 15, 2, 1, 1),
		task(3, 0, 15, 2, 1, 1), // duplicate release 0 and deadline 15
	}
	ws := windows(tasks)
	// releases {0, 5} × deadlines {10, 15} with a < b → 4 pairs.
	if len(ws) != 4 {
		t.Fatalf("windows = %v, want 4 pairs", ws)
	}
	seen := map[[2]int64]bool{}
	for _, w := range ws {
		if w[0] >= w[1] {
			t.Fatalf("degenerate window %v", w)
		}
		seen[w] = true
	}
	for _, want := range [][2]int64{{0, 10}, {0, 15}, {5, 10}, {5, 15}} {
		if !seen[want] {
			t.Errorf("missing window %v", want)
		}
	}
}

func TestWindowsIgnoreZeroProfitTasks(t *testing.T) {
	tasks := []Task{
		task(1, 0, 10, 2, 1, 0), // zero profit: excluded
		task(2, 3, 8, 2, 1, 1),
	}
	ws := windows(tasks)
	if len(ws) != 1 || ws[0] != [2]int64{3, 8} {
		t.Errorf("windows = %v", ws)
	}
}
