package dag

import (
	"errors"
	"testing"
)

func TestBuilderSimpleChain(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(2)
	c := b.AddNode(3)
	b.AddEdge(a, c)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
	if g.TotalWork() != 5 {
		t.Errorf("W = %d, want 5", g.TotalWork())
	}
	if g.Span() != 5 {
		t.Errorf("L = %d, want 5", g.Span())
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d", g.NumEdges())
	}
}

func TestBuilderIndependentNodes(t *testing.T) {
	b := NewBuilder()
	b.AddNode(4)
	b.AddNode(7)
	b.AddNode(2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalWork() != 13 {
		t.Errorf("W = %d, want 13", g.TotalWork())
	}
	if g.Span() != 7 {
		t.Errorf("L = %d, want 7 (max node work)", g.Span())
	}
}

func TestBuilderDiamondSpan(t *testing.T) {
	// a -> {b, c} -> d with works 1, 5, 2, 1: span = 1+5+1 = 7.
	b := NewBuilder()
	a := b.AddNode(1)
	x := b.AddNode(5)
	y := b.AddNode(2)
	d := b.AddNode(1)
	b.AddEdge(a, x)
	b.AddEdge(a, y)
	b.AddEdge(x, d)
	b.AddEdge(y, d)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Span() != 7 {
		t.Errorf("L = %d, want 7", g.Span())
	}
	if g.TotalWork() != 9 {
		t.Errorf("W = %d, want 9", g.TotalWork())
	}
}

func TestBuilderRejectsCycle(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(1)
	c := b.AddNode(1)
	b.AddEdge(a, c)
	b.AddEdge(c, a)
	if _, err := b.Build(); !errors.Is(err, ErrCycle) {
		t.Errorf("Build = %v, want ErrCycle", err)
	}
}

func TestBuilderRejectsEmpty(t *testing.T) {
	if _, err := NewBuilder().Build(); !errors.Is(err, ErrEmpty) {
		t.Errorf("Build = %v, want ErrEmpty", err)
	}
}

func TestBuilderRejectsNonPositiveWork(t *testing.T) {
	b := NewBuilder()
	b.AddNode(0)
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted zero-work node")
	}
}

func TestBuilderRejectsBadEdge(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(1)
	b.AddEdge(a, 5)
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted out-of-range edge")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(1)
	b.AddEdge(a, a)
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted self-loop")
	}
}

func TestBuilderCoalescesDuplicateEdges(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(1)
	c := b.AddNode(1)
	b.AddEdge(a, c)
	b.AddEdge(a, c)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1 after coalescing", g.NumEdges())
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	NewBuilder().MustBuild()
}

func TestValidateAcceptsBuilt(t *testing.T) {
	g := Chain(5, 3)
	if err := g.Validate(); err != nil {
		t.Errorf("Validate = %v", err)
	}
}

func TestPredecessorsSuccessors(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(1)
	c := b.AddNode(1)
	d := b.AddNode(1)
	b.AddEdge(a, c)
	b.AddEdge(a, d)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Successors(a)) != 2 {
		t.Errorf("succ(a) = %v", g.Successors(a))
	}
	if len(g.Predecessors(c)) != 1 || g.Predecessors(c)[0] != a {
		t.Errorf("pred(c) = %v", g.Predecessors(c))
	}
}
