package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParallelUnion(t *testing.T) {
	g := Parallel(Chain(3, 2), Block(4, 1), Wavefront(3, 1))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantW := int64(6 + 4 + 9)
	if g.TotalWork() != wantW {
		t.Errorf("W = %d, want %d", g.TotalWork(), wantW)
	}
	// L = max(6, 1, 5) = 6.
	if g.Span() != 6 {
		t.Errorf("L = %d, want 6", g.Span())
	}
}

func TestSerialChain(t *testing.T) {
	g := Serial(Block(4, 1), Chain(2, 3), Block(2, 2))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.TotalWork() != 4+6+4 {
		t.Errorf("W = %d", g.TotalWork())
	}
	// L = 1 + 6 + 2 = 9.
	if g.Span() != 9 {
		t.Errorf("L = %d, want 9", g.Span())
	}
	// Nothing from stage 3 can be ready before stage 1 completes.
	s := NewState(g)
	if s.ReadyCount() != 4 {
		t.Errorf("initial ready = %d, want the 4 stage-1 nodes", s.ReadyCount())
	}
}

func TestSerialRunsInOrder(t *testing.T) {
	g := Serial(Block(3, 1), Block(3, 1))
	ticks := runGreedy(t, g, 3, ByID{})
	if ticks != 2 {
		t.Errorf("two serial blocks on 3 procs took %d ticks, want 2", ticks)
	}
}

func TestRepeat(t *testing.T) {
	g := Repeat(ForkJoin(1, 3, 1), 3)
	base := ForkJoin(1, 3, 1)
	if g.TotalWork() != 3*base.TotalWork() {
		t.Errorf("W = %d", g.TotalWork())
	}
	if g.Span() != 3*base.Span() {
		t.Errorf("L = %d", g.Span())
	}
}

func TestComposePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { Parallel() },
		func() { Serial() },
		func() { Repeat(Chain(1, 1), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPropComposeAlgebra(t *testing.T) {
	// W and L obey the algebra on random components: Parallel sums W and
	// maxes L; Serial sums both.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *DAG {
			switch rng.Intn(4) {
			case 0:
				return Chain(1+rng.Intn(4), 1+rng.Int63n(3))
			case 1:
				return Block(1+rng.Intn(5), 1+rng.Int63n(3))
			case 2:
				return ForkJoin(1+rng.Intn(2), 1+rng.Intn(4), 1+rng.Int63n(2))
			default:
				return ReductionTree(1+rng.Intn(6), 1)
			}
		}
		a, b := mk(), mk()
		par := Parallel(a, b)
		ser := Serial(a, b)
		if par.TotalWork() != a.TotalWork()+b.TotalWork() || ser.TotalWork() != par.TotalWork() {
			return false
		}
		maxL := a.Span()
		if b.Span() > maxL {
			maxL = b.Span()
		}
		return par.Span() == maxL && ser.Span() == a.Span()+b.Span()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
