package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// runGreedy executes g on procs unit-speed processors, one work unit per
// processor-tick, choosing nodes with pol. It returns the completion time in
// ticks. This is the single-job greedy execution the paper's Observation 1
// reasons about.
func runGreedy(t *testing.T, g *DAG, procs int, pol PickPolicy) int64 {
	t.Helper()
	s := NewState(g)
	var ticks int64
	var buf []NodeID
	limit := g.TotalWork() + g.Span() + 10
	for !s.Done() {
		buf = pol.Pick(s, procs, buf[:0])
		if len(buf) == 0 {
			t.Fatalf("no ready nodes but job not done (completed %d/%d)", s.CompletedNodes(), g.NumNodes())
		}
		for _, v := range buf {
			s.Apply(v, 1)
		}
		ticks++
		if ticks > limit {
			t.Fatalf("greedy execution exceeded %d ticks", limit)
		}
	}
	return ticks
}

func TestStateInitialReadySet(t *testing.T) {
	g := Figure2(3, 4) // chain of 3 then 4 parallel
	s := NewState(g)
	if s.ReadyCount() != 1 {
		t.Errorf("ReadyCount = %d, want 1 (chain head)", s.ReadyCount())
	}
	if s.Done() {
		t.Error("fresh state reports Done")
	}
	if s.RemainingWork() != g.TotalWork() {
		t.Errorf("RemainingWork = %d, want %d", s.RemainingWork(), g.TotalWork())
	}
	if s.RemainingSpan() != g.Span() {
		t.Errorf("RemainingSpan = %d, want %d", s.RemainingSpan(), g.Span())
	}
}

func TestStateUnfoldsChain(t *testing.T) {
	g := Chain(3, 2)
	s := NewState(g)
	var ready []NodeID
	ready = s.ReadyNodes(ready[:0])
	if len(ready) != 1 {
		t.Fatalf("ready = %v", ready)
	}
	head := ready[0]
	if got := s.Apply(head, 1); got != 1 {
		t.Errorf("Apply consumed %d", got)
	}
	if s.ReadyCount() != 1 || !s.IsReady(head) {
		t.Error("partially executed node left ready set")
	}
	s.Apply(head, 1)
	if s.IsReady(head) {
		t.Error("completed node still ready")
	}
	if s.ReadyCount() != 1 {
		t.Errorf("successor not released, ready = %d", s.ReadyCount())
	}
	if s.CompletedNodes() != 1 {
		t.Errorf("CompletedNodes = %d", s.CompletedNodes())
	}
}

func TestStateApplyOvershootClamped(t *testing.T) {
	g := Chain(1, 3)
	s := NewState(g)
	if got := s.Apply(0, 10); got != 3 {
		t.Errorf("Apply consumed %d, want 3 (clamped)", got)
	}
	if !s.Done() {
		t.Error("job not done after full work applied")
	}
	if s.ExecutedWork() != 3 {
		t.Errorf("ExecutedWork = %d, want 3", s.ExecutedWork())
	}
}

func TestStateApplyPanicsOnNonReady(t *testing.T) {
	g := Chain(2, 1)
	s := NewState(g)
	defer func() {
		if recover() == nil {
			t.Fatal("Apply to non-ready node did not panic")
		}
	}()
	s.Apply(1, 1) // node 1 depends on node 0
}

func TestStateApplyPanicsOnZeroUnits(t *testing.T) {
	g := Chain(1, 1)
	s := NewState(g)
	defer func() {
		if recover() == nil {
			t.Fatal("Apply with 0 units did not panic")
		}
	}()
	s.Apply(0, 0)
}

func TestResetNodeDiscardsPartialWork(t *testing.T) {
	g := Chain(2, 3)
	s := NewState(g)
	if got := s.ResetNode(0); got != 0 {
		t.Errorf("reset of untouched node discarded %d units", got)
	}
	s.Apply(0, 2)
	if got := s.ResetNode(0); got != 2 {
		t.Errorf("ResetNode discarded %d units, want 2", got)
	}
	if s.Remaining(0) != 3 || s.ExecutedWork() != 0 {
		t.Errorf("after reset: remaining=%d executed=%d", s.Remaining(0), s.ExecutedWork())
	}
	if s.RemainingWork() != g.TotalWork() || s.RemainingSpan() != g.Span() {
		t.Errorf("reset state disagrees with fresh state: work=%d span=%d", s.RemainingWork(), s.RemainingSpan())
	}
	// The node must still execute to completion after the reset.
	s.Apply(0, 3)
	if s.IsReady(0) || !s.IsReady(1) {
		t.Error("chain did not unfold after reset and re-execution")
	}
}

func TestResetNodePanicsOnNonReady(t *testing.T) {
	g := Chain(2, 1)
	s := NewState(g)
	s.Apply(0, 1) // complete node 0
	defer func() {
		if recover() == nil {
			t.Fatal("ResetNode on completed node did not panic")
		}
	}()
	s.ResetNode(0)
}

func TestRemainingSpanDecreasesWithCriticalWork(t *testing.T) {
	g := Chain(4, 1)
	s := NewState(g)
	want := int64(4)
	for !s.Done() {
		if got := s.RemainingSpan(); got != want {
			t.Fatalf("RemainingSpan = %d, want %d", got, want)
		}
		var ready []NodeID
		ready = s.ReadyNodes(ready)
		s.Apply(ready[0], 1)
		want--
	}
	if got := s.RemainingSpan(); got != 0 {
		t.Errorf("RemainingSpan after done = %d", got)
	}
}

func TestObservation1AllReadyExecutedShrinksSpan(t *testing.T) {
	// Observation 1: if all ready nodes execute for a step, the remaining
	// critical path shrinks by the step's speed (1 here).
	rng := rand.New(rand.NewSource(7))
	g := Layered(rng, 5, 4, 3, 0.5)
	s := NewState(g)
	var buf []NodeID
	for !s.Done() {
		before := s.RemainingSpan()
		buf = s.ReadyNodes(buf[:0])
		for _, v := range buf {
			s.Apply(v, 1)
		}
		after := s.RemainingSpan()
		if after > before-1 {
			t.Fatalf("span went %d -> %d with all ready nodes executing", before, after)
		}
	}
}

func TestGreedyCompletionWithinBrentBound(t *testing.T) {
	// Graham/Brent: greedy on A processors finishes within (W−L)/A + L.
	cases := []struct {
		name  string
		g     *DAG
		procs int
	}{
		{"chain", Chain(10, 2), 4},
		{"block", Block(16, 1), 4},
		{"forkjoin", ForkJoin(3, 5, 2), 3},
		{"figure1", Figure1(4, 8), 4},
		{"figure2", Figure2(6, 12), 4},
		{"widechain", WideChain(3, 4, 1), 2},
	}
	for _, c := range cases {
		for _, pol := range []PickPolicy{ByID{}, Unlucky{}, CriticalPathFirst{}} {
			ticks := runGreedy(t, c.g, c.procs, pol)
			w, l, a := c.g.TotalWork(), c.g.Span(), int64(c.procs)
			bound := (w-l+a-1)/a + l
			if ticks > bound {
				t.Errorf("%s/%s: %d ticks > Brent bound %d", c.name, pol.Name(), ticks, bound)
			}
			lower := l
			if w/a > lower {
				lower = w / a
			}
			if ticks < lower {
				t.Errorf("%s/%s: %d ticks below lower bound max(L, W/A) = %d", c.name, pol.Name(), ticks, lower)
			}
		}
	}
}

func TestPropLayeredInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Layered(rng, 1+rng.Intn(6), 1+rng.Intn(5), 1+rng.Int63n(4), rng.Float64())
		if g.Validate() != nil {
			return false
		}
		// W = sum of node works; L between max node work and W.
		var sum, maxw int64
		for v := 0; v < g.NumNodes(); v++ {
			sum += g.Work(NodeID(v))
			if g.Work(NodeID(v)) > maxw {
				maxw = g.Work(NodeID(v))
			}
		}
		return g.TotalWork() == sum && g.Span() >= maxw && g.Span() <= sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropGreedyBrentBoundRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Layered(rng, 1+rng.Intn(5), 1+rng.Intn(6), 1+rng.Int63n(3), rng.Float64())
		procs := 1 + rng.Intn(6)
		s := NewState(g)
		var ticks int64
		var buf []NodeID
		pol := Random{Rng: rng}
		for !s.Done() {
			buf = pol.Pick(s, procs, buf[:0])
			for _, v := range buf {
				s.Apply(v, 1)
			}
			ticks++
		}
		w, l, a := g.TotalWork(), g.Span(), int64(procs)
		return ticks <= (w-l+a-1)/a+l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExecutedWorkAccounting(t *testing.T) {
	g := ForkJoin(2, 3, 2)
	s := NewState(g)
	var buf []NodeID
	for !s.Done() {
		buf = (ByID{}).Pick(s, 2, buf[:0])
		for _, v := range buf {
			s.Apply(v, 2)
		}
	}
	if s.ExecutedWork() != g.TotalWork() {
		t.Errorf("ExecutedWork = %d, want %d", s.ExecutedWork(), g.TotalWork())
	}
	if s.RemainingWork() != 0 {
		t.Errorf("RemainingWork = %d", s.RemainingWork())
	}
}
