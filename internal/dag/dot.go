package dag

import (
	"fmt"
	"io"
)

// WriteDOT renders g in Graphviz DOT format, one node per task labeled with
// its ID and work. Useful for inspecting generated shapes
// (`go run ./cmd/dag-gen ... | dot -Tsvg`-style workflows and docs).
func WriteDOT(w io.Writer, name string, g *DAG) error {
	if g == nil || g.NumNodes() == 0 {
		return fmt.Errorf("dag: WriteDOT on empty graph")
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	for v := 0; v < g.NumNodes(); v++ {
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%d\\nw=%d\"];\n", v, v, g.Work(NodeID(v))); err != nil {
			return err
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Successors(NodeID(v)) {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", v, u); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
