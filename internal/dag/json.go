package dag

import (
	"encoding/json"
	"fmt"
)

// dagJSON is the serialized form: node works plus an edge list.
type dagJSON struct {
	Work  []int64     `json:"work"`
	Edges [][2]NodeID `json:"edges"`
}

// MarshalJSON encodes the DAG as {"work": [...], "edges": [[u,v], ...]}.
func (g *DAG) MarshalJSON() ([]byte, error) {
	out := dagJSON{Work: g.work, Edges: make([][2]NodeID, 0, g.NumEdges())}
	for v := range g.succs {
		for _, u := range g.succs[v] {
			out.Edges = append(out.Edges, [2]NodeID{NodeID(v), u})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes and validates a DAG, recomputing W, L, and the
// topological order.
func (g *DAG) UnmarshalJSON(data []byte) error {
	var in dagJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("dag: %w", err)
	}
	b := NewBuilder()
	for _, w := range in.Work {
		b.AddNode(w)
	}
	for _, e := range in.Edges {
		b.AddEdge(e[0], e[1])
	}
	built, err := b.Build()
	if err != nil {
		return err
	}
	*g = *built
	return nil
}
