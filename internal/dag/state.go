package dag

import "fmt"

// State is the mutable execution state of one DAG job. It unfolds the graph
// dynamically: at any moment only the set of ready nodes is observable, which
// is exactly the semi-non-clairvoyant information model of the paper. The
// engine applies work to ready nodes through Apply; completed nodes release
// their successors.
type State struct {
	g            *DAG
	remaining    []int64
	missingPreds []int32

	ready    []NodeID // unordered set of ready node IDs
	readyPos []int32  // position of node in ready, or -1

	completedNodes int
	executedWork   int64

	downDirty bool
	down      []int64 // cached remaining-longest-path per incomplete node
}

// NewState returns a fresh execution state for g: nothing executed, sources
// ready.
func NewState(g *DAG) *State {
	n := g.NumNodes()
	s := &State{
		g:            g,
		remaining:    append([]int64(nil), g.work...),
		missingPreds: make([]int32, n),
		readyPos:     make([]int32, n),
		downDirty:    true,
		down:         make([]int64, n),
	}
	for v := 0; v < n; v++ {
		s.missingPreds[v] = int32(len(g.preds[v]))
		s.readyPos[v] = -1
	}
	for v := 0; v < n; v++ {
		if s.missingPreds[v] == 0 {
			s.pushReady(NodeID(v))
		}
	}
	return s
}

// DAG returns the underlying immutable graph.
func (s *State) DAG() *DAG { return s.g }

// ReadyCount returns the number of currently ready (unfinished, all
// predecessors complete) nodes.
func (s *State) ReadyCount() int { return len(s.ready) }

// ReadyNodes appends the current ready set to dst and returns it. The order
// is unspecified; use a PickPolicy for a deterministic choice.
func (s *State) ReadyNodes(dst []NodeID) []NodeID {
	return append(dst, s.ready...)
}

// IsReady reports whether node v is currently ready.
func (s *State) IsReady(v NodeID) bool { return s.readyPos[v] >= 0 }

// Remaining returns the unprocessed work of node v.
func (s *State) Remaining(v NodeID) int64 { return s.remaining[v] }

// Done reports whether every node has completed.
func (s *State) Done() bool { return s.completedNodes == s.g.NumNodes() }

// CompletedNodes returns how many nodes have finished.
func (s *State) CompletedNodes() int { return s.completedNodes }

// ExecutedWork returns the total work units applied so far (excluding any
// capacity wasted on overshoot within a tick).
func (s *State) ExecutedWork() int64 { return s.executedWork }

// RemainingWork returns the total unprocessed work across all nodes.
func (s *State) RemainingWork() int64 { return s.g.TotalWork() - s.executedWork }

// Apply processes up to units work on ready node v, returning the work
// actually consumed (capacity beyond the node's remaining work is lost, as a
// processor executes one node at a time). If the node finishes, its
// successors with no other outstanding predecessors become ready.
// Apply panics if v is not ready or units is not positive: both indicate an
// engine bug, not a recoverable condition.
func (s *State) Apply(v NodeID, units int64) int64 {
	if units <= 0 {
		panic(fmt.Sprintf("dag: Apply with non-positive units %d", units))
	}
	if s.readyPos[v] < 0 {
		panic(fmt.Sprintf("dag: Apply to non-ready node %d", v))
	}
	consumed := units
	if consumed > s.remaining[v] {
		consumed = s.remaining[v]
	}
	s.remaining[v] -= consumed
	s.executedWork += consumed
	s.downDirty = true
	if s.remaining[v] == 0 {
		s.removeReady(v)
		s.completedNodes++
		for _, u := range s.g.succs[v] {
			s.missingPreds[u]--
			if s.missingPreds[u] == 0 {
				s.pushReady(u)
			}
		}
	}
	return consumed
}

// ResetNode discards all accumulated progress on an incomplete node,
// restoring its full work, and returns the work units discarded. The fault
// injector uses it to model execution failures that force re-execution.
// Only ready nodes can hold partial progress (work lands exclusively on
// ready nodes and a finished node leaves the ready set), so ResetNode
// panics on a completed node: that indicates an engine bug.
func (s *State) ResetNode(v NodeID) int64 {
	if s.readyPos[v] < 0 {
		panic(fmt.Sprintf("dag: ResetNode on non-ready node %d", v))
	}
	done := s.g.work[v] - s.remaining[v]
	if done == 0 {
		return 0
	}
	s.remaining[v] = s.g.work[v]
	s.executedWork -= done
	s.downDirty = true
	return done
}

// RemainingSpan returns the remaining critical-path length: the longest
// chain of unprocessed work through incomplete nodes. For an untouched job
// this equals Span(); for a done job it is zero.
func (s *State) RemainingSpan() int64 {
	s.refreshDown()
	best := int64(0)
	for _, v := range s.ready {
		if s.down[v] > best {
			best = s.down[v]
		}
	}
	return best
}

// DownLength returns the longest remaining path starting at (and including
// the remaining work of) node v. Only meaningful for incomplete nodes; used
// by clairvoyant and adversarial node-pick policies.
func (s *State) DownLength(v NodeID) int64 {
	s.refreshDown()
	return s.down[v]
}

// refreshDown recomputes the remaining-longest-path DP if stale. Incomplete
// nodes form an upward-closed set (a successor of an incomplete node is
// incomplete), so a reverse topological sweep over all nodes, skipping
// completed ones, is correct.
func (s *State) refreshDown() {
	if !s.downDirty {
		return
	}
	order := s.g.order
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if s.remaining[v] == 0 {
			s.down[v] = 0
			continue
		}
		best := int64(0)
		for _, u := range s.g.succs[v] {
			if s.down[u] > best {
				best = s.down[u]
			}
		}
		s.down[v] = best + s.remaining[v]
	}
	s.downDirty = false
}

func (s *State) pushReady(v NodeID) {
	s.readyPos[v] = int32(len(s.ready))
	s.ready = append(s.ready, v)
}

func (s *State) removeReady(v NodeID) {
	pos := s.readyPos[v]
	last := len(s.ready) - 1
	moved := s.ready[last]
	s.ready[pos] = moved
	s.readyPos[moved] = pos
	s.ready = s.ready[:last]
	s.readyPos[v] = -1
}
