package dag

import (
	"fmt"
	"math/rand"
)

// Chain returns a sequential chain of n nodes, each with the given work.
// W = n·work, L = n·work.
func Chain(n int, work int64) *DAG {
	if n <= 0 {
		panic(fmt.Sprintf("dag: Chain with n=%d", n))
	}
	b := NewBuilder()
	prev := b.AddNode(work)
	for i := 1; i < n; i++ {
		v := b.AddNode(work)
		b.AddEdge(prev, v)
		prev = v
	}
	return b.MustBuild()
}

// Block returns n fully independent nodes, each with the given work.
// W = n·work, L = work.
func Block(n int, work int64) *DAG {
	if n <= 0 {
		panic(fmt.Sprintf("dag: Block with n=%d", n))
	}
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(work)
	}
	return b.MustBuild()
}

// Figure1 returns the paper's Figure 1 adversarial DAG for m processors: one
// sequential chain of length L (L unit-work nodes) plus a fully parallel
// block of (m−1)·L unit-work nodes, with no edges between them. The job has
// W = m·L and span L = W/m.
//
// A clairvoyant scheduler co-schedules the chain with the block and finishes
// in W/m = L steps on m unit-speed processors. A semi-non-clairvoyant
// scheduler that unluckily drains the block first needs
// (W−L)/m + L = (2 − 1/m)·L steps, which is the Theorem 1 separation.
func Figure1(m int, L int64) *DAG {
	if m < 2 {
		panic(fmt.Sprintf("dag: Figure1 needs m >= 2, got %d", m))
	}
	if L <= 0 {
		panic(fmt.Sprintf("dag: Figure1 with L=%d", L))
	}
	b := NewBuilder()
	prev := b.AddNode(1)
	for i := int64(1); i < L; i++ {
		v := b.AddNode(1)
		b.AddEdge(prev, v)
		prev = v
	}
	block := int64(m-1) * L
	for i := int64(0); i < block; i++ {
		b.AddNode(1)
	}
	return b.MustBuild()
}

// Figure2 returns the paper's Figure 2 DAG: a chain of chainLen unit-work
// nodes followed by a fully parallel block of blockWidth unit-work nodes that
// all depend on the last chain node. Even a clairvoyant scheduler needs
// chainLen + ceil(blockWidth/m) steps, approaching (W−L)/m + L as the node
// granularity shrinks. W = chainLen + blockWidth, L = chainLen + 1.
func Figure2(chainLen, blockWidth int) *DAG {
	if chainLen <= 0 || blockWidth <= 0 {
		panic(fmt.Sprintf("dag: Figure2 with chainLen=%d blockWidth=%d", chainLen, blockWidth))
	}
	b := NewBuilder()
	prev := b.AddNode(1)
	for i := 1; i < chainLen; i++ {
		v := b.AddNode(1)
		b.AddEdge(prev, v)
		prev = v
	}
	for i := 0; i < blockWidth; i++ {
		v := b.AddNode(1)
		b.AddEdge(prev, v)
	}
	return b.MustBuild()
}

// ForkJoin returns stages sequential fork–join phases: each phase is a
// source node, width parallel nodes, and a join node, with consecutive
// phases chained. Every node has the given work. This is the shape of
// map-reduce rounds and of parallel-for programs in Cilk/OpenMP/TBB.
func ForkJoin(stages, width int, work int64) *DAG {
	if stages <= 0 || width <= 0 {
		panic(fmt.Sprintf("dag: ForkJoin with stages=%d width=%d", stages, width))
	}
	b := NewBuilder()
	var prevJoin NodeID = -1
	for s := 0; s < stages; s++ {
		src := b.AddNode(work)
		if prevJoin >= 0 {
			b.AddEdge(prevJoin, src)
		}
		join := b.AddNode(work)
		for i := 0; i < width; i++ {
			v := b.AddNode(work)
			b.AddEdge(src, v)
			b.AddEdge(v, join)
		}
		prevJoin = join
	}
	return b.MustBuild()
}

// Layered returns a random layered DAG: layers of random width in
// [1, maxWidth], node work uniform in [1, maxWork], and each pair of nodes in
// adjacent layers connected with probability edgeProb. Every node in layer
// i>0 receives at least one incoming edge so the layer structure is real.
// The generator is deterministic given rng.
func Layered(rng *rand.Rand, layers, maxWidth int, maxWork int64, edgeProb float64) *DAG {
	if layers <= 0 || maxWidth <= 0 || maxWork <= 0 {
		panic(fmt.Sprintf("dag: Layered with layers=%d maxWidth=%d maxWork=%d", layers, maxWidth, maxWork))
	}
	b := NewBuilder()
	var prev []NodeID
	for l := 0; l < layers; l++ {
		width := 1 + rng.Intn(maxWidth)
		cur := make([]NodeID, width)
		for i := range cur {
			cur[i] = b.AddNode(1 + rng.Int63n(maxWork))
		}
		if l > 0 {
			for _, v := range cur {
				linked := false
				for _, u := range prev {
					if rng.Float64() < edgeProb {
						b.AddEdge(u, v)
						linked = true
					}
				}
				if !linked {
					b.AddEdge(prev[rng.Intn(len(prev))], v)
				}
			}
		}
		prev = cur
	}
	return b.MustBuild()
}

// SeriesParallel returns a random series–parallel DAG built by recursive
// composition to the given depth: at each level the generator either chains
// two sub-graphs (series) or runs them independently between a fork and a
// join (parallel). Leaves are single nodes with work uniform in [1, maxWork].
func SeriesParallel(rng *rand.Rand, depth int, maxWork int64) *DAG {
	if depth < 0 || maxWork <= 0 {
		panic(fmt.Sprintf("dag: SeriesParallel with depth=%d maxWork=%d", depth, maxWork))
	}
	b := NewBuilder()
	var build func(d int) (src, sink NodeID)
	build = func(d int) (NodeID, NodeID) {
		if d == 0 {
			v := b.AddNode(1 + rng.Int63n(maxWork))
			return v, v
		}
		if rng.Intn(2) == 0 { // series
			s1, t1 := build(d - 1)
			s2, t2 := build(d - 1)
			b.AddEdge(t1, s2)
			return s1, t2
		}
		// parallel between a fresh fork and join
		fork := b.AddNode(1 + rng.Int63n(maxWork))
		join := b.AddNode(1 + rng.Int63n(maxWork))
		for i := 0; i < 2; i++ {
			s, t := build(d - 1)
			b.AddEdge(fork, s)
			b.AddEdge(t, join)
		}
		return fork, join
	}
	build(depth)
	return b.MustBuild()
}

// WideChain returns a chain of segments where each segment is a parallel
// band of width nodes followed by a single synchronization node — a
// bulk-synchronous-parallel (BSP) program shape.
func WideChain(segments, width int, work int64) *DAG {
	if segments <= 0 || width <= 0 {
		panic(fmt.Sprintf("dag: WideChain with segments=%d width=%d", segments, width))
	}
	b := NewBuilder()
	var prevSync NodeID = -1
	for s := 0; s < segments; s++ {
		sync := b.AddNode(work)
		for i := 0; i < width; i++ {
			v := b.AddNode(work)
			if prevSync >= 0 {
				b.AddEdge(prevSync, v)
			}
			b.AddEdge(v, sync)
		}
		prevSync = sync
	}
	return b.MustBuild()
}
