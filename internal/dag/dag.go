// Package dag implements the parallel-job model of the paper: each job is an
// independent directed acyclic graph whose nodes are sequential work and whose
// edges are dependencies. A node is ready when all predecessors have finished;
// a job completes when every node has been processed.
//
// The package provides the immutable graph (DAG), a mutable execution state
// that unfolds the graph dynamically — exposing only the currently ready
// nodes, which is exactly the information a semi-non-clairvoyant scheduler is
// allowed to see — canonical graph shapes including the adversarial families
// of the paper's Figures 1 and 2, and node-pick policies that decide which
// ready nodes run when a scheduler grants a job fewer processors than it has
// ready nodes.
package dag

import (
	"errors"
	"fmt"
)

// NodeID identifies a node within one DAG. IDs are dense: 0..NumNodes()-1.
type NodeID int32

// DAG is an immutable directed acyclic graph of work nodes. Construct one
// with a Builder or one of the shape constructors. The zero value is an
// empty graph with no nodes.
type DAG struct {
	work  []int64
	succs [][]NodeID
	preds [][]NodeID

	totalWork int64
	span      int64
	order     []NodeID // cached topological order
}

// NumNodes returns the number of nodes.
func (g *DAG) NumNodes() int { return len(g.work) }

// Work returns the processing requirement of node v.
func (g *DAG) Work(v NodeID) int64 { return g.work[v] }

// TotalWork returns W, the sum of all node works (the job's uninterrupted
// execution time on a single unit-speed processor).
func (g *DAG) TotalWork() int64 { return g.totalWork }

// Span returns L, the critical-path length (the job's execution time on
// infinitely many unit-speed processors).
func (g *DAG) Span() int64 { return g.span }

// Successors returns the successors of v. The returned slice is owned by the
// DAG and must not be modified.
func (g *DAG) Successors(v NodeID) []NodeID { return g.succs[v] }

// Predecessors returns the predecessors of v. The returned slice is owned by
// the DAG and must not be modified.
func (g *DAG) Predecessors(v NodeID) []NodeID { return g.preds[v] }

// NumEdges returns the number of dependency edges.
func (g *DAG) NumEdges() int {
	n := 0
	for _, s := range g.succs {
		n += len(s)
	}
	return n
}

// Builder assembles a DAG incrementally. The zero value is ready to use.
type Builder struct {
	work  []int64
	edges [][2]NodeID
	err   error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// AddNode adds a node with the given work and returns its ID.
// Work must be positive; otherwise Build will fail.
func (b *Builder) AddNode(work int64) NodeID {
	if work <= 0 && b.err == nil {
		b.err = fmt.Errorf("dag: node %d has non-positive work %d", len(b.work), work)
	}
	b.work = append(b.work, work)
	return NodeID(len(b.work) - 1)
}

// AddEdge records a dependency: v cannot start until u completes.
func (b *Builder) AddEdge(u, v NodeID) {
	if b.err == nil {
		n := NodeID(len(b.work))
		if u < 0 || u >= n || v < 0 || v >= n {
			b.err = fmt.Errorf("dag: edge (%d,%d) references unknown node (have %d nodes)", u, v, n)
		} else if u == v {
			b.err = fmt.Errorf("dag: self-loop on node %d", u)
		}
	}
	b.edges = append(b.edges, [2]NodeID{u, v})
}

// ErrCycle is returned by Build when the edge set contains a cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// ErrEmpty is returned by Build when the graph has no nodes.
var ErrEmpty = errors.New("dag: graph has no nodes")

// Build validates the graph (node works positive, edges in range, acyclic,
// non-empty), computes W and L, and returns the immutable DAG. Duplicate
// edges are coalesced.
func (b *Builder) Build() (*DAG, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := len(b.work)
	if n == 0 {
		return nil, ErrEmpty
	}
	g := &DAG{
		work:  append([]int64(nil), b.work...),
		succs: make([][]NodeID, n),
		preds: make([][]NodeID, n),
	}
	seen := make(map[[2]NodeID]bool, len(b.edges))
	for _, e := range b.edges {
		if seen[e] {
			continue
		}
		seen[e] = true
		g.succs[e[0]] = append(g.succs[e[0]], e[1])
		g.preds[e[1]] = append(g.preds[e[1]], e[0])
	}
	order, ok := g.topoOrder()
	if !ok {
		return nil, ErrCycle
	}
	g.order = order
	for _, w := range g.work {
		g.totalWork += w
	}
	// Longest path over the topological order.
	down := make([]int64, n) // down[v] = longest path starting at v (inclusive)
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		best := int64(0)
		for _, u := range g.succs[v] {
			if down[u] > best {
				best = down[u]
			}
		}
		down[v] = best + g.work[v]
		if down[v] > g.span {
			g.span = down[v]
		}
	}
	return g, nil
}

// MustBuild is Build that panics on error, for statically-correct shapes.
func (b *Builder) MustBuild() *DAG {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// topoOrder returns a topological order, or ok=false if the graph is
// cyclic. The order is memoized: a DAG is never mutated after Build (Build
// copies the builder's state into a fresh value), so the first successful
// computation serves every later call — Validate on the submission hot path
// re-checks node invariants but no longer re-runs Kahn's algorithm.
func (g *DAG) topoOrder() ([]NodeID, bool) {
	if g.order != nil {
		return g.order, true
	}
	n := len(g.work)
	indeg := make([]int32, n)
	for v := 0; v < n; v++ {
		for range g.preds[v] {
			indeg[v]++
		}
	}
	queue := make([]NodeID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, NodeID(v))
		}
	}
	order := make([]NodeID, 0, n)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, u := range g.succs[v] {
			indeg[u]--
			if indeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if len(order) != n {
		return order, false // cyclic: never cache a partial order
	}
	g.order = order
	return order, true
}

// Validate re-checks structural invariants of a constructed DAG. It is used
// by deserialization and by property tests.
func (g *DAG) Validate() error {
	n := len(g.work)
	if n == 0 {
		return ErrEmpty
	}
	for v := 0; v < n; v++ {
		if g.work[v] <= 0 {
			return fmt.Errorf("dag: node %d has non-positive work %d", v, g.work[v])
		}
		for _, u := range g.succs[v] {
			if u < 0 || int(u) >= n {
				return fmt.Errorf("dag: node %d has out-of-range successor %d", v, u)
			}
		}
	}
	if _, ok := g.topoOrder(); !ok {
		return ErrCycle
	}
	return nil
}
