package dag

import "fmt"

// This file provides the task graphs of classic HPC kernels — the job
// shapes DAG-scheduling systems are evaluated on in practice. Each
// constructor documents its W (total work) and, where closed-form, L (span)
// so tests can pin them.

// Wavefront returns the n×n stencil wavefront DAG: node (i,j) depends on
// (i−1,j) and (i,j−1), every node with the given work. This is the shape of
// Smith–Waterman, Gauss–Seidel sweeps, and dynamic-programming tables.
// W = n²·work, L = (2n−1)·work.
func Wavefront(n int, work int64) *DAG {
	if n <= 0 {
		panic(fmt.Sprintf("dag: Wavefront with n=%d", n))
	}
	b := NewBuilder()
	idx := func(i, j int) NodeID { return NodeID(i*n + j) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.AddNode(work)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i > 0 {
				b.AddEdge(idx(i-1, j), idx(i, j))
			}
			if j > 0 {
				b.AddEdge(idx(i, j-1), idx(i, j))
			}
		}
	}
	return b.MustBuild()
}

// ReductionTree returns a binary reduction over n leaves (n ≥ 1): leaves
// feed pairwise combine nodes up to a single root; odd elements pass
// through to the next level. Every node has the given work.
// For n = 2^h: W = (2n−1)·work, L = (h+1)·work.
func ReductionTree(n int, work int64) *DAG {
	if n <= 0 {
		panic(fmt.Sprintf("dag: ReductionTree with n=%d", n))
	}
	b := NewBuilder()
	level := make([]NodeID, n)
	for i := range level {
		level[i] = b.AddNode(work)
	}
	for len(level) > 1 {
		var next []NodeID
		for i := 0; i+1 < len(level); i += 2 {
			v := b.AddNode(work)
			b.AddEdge(level[i], v)
			b.AddEdge(level[i+1], v)
			next = append(next, v)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return b.MustBuild()
}

// FFT returns the radix-2 butterfly DAG over n = 2^h points: h stages of
// n/2 butterfly nodes; the butterfly at stage s for pair (a, b) depends on
// the stage-(s−1) butterflies that produced a and b. Every node has the
// given work. W = h·(n/2)·work, L = h·work.
func FFT(n int, work int64) *DAG {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("dag: FFT needs a power-of-two n ≥ 2, got %d", n))
	}
	b := NewBuilder()
	// producer[i] = node that last wrote point i (−1 before stage 0).
	producer := make([]NodeID, n)
	for i := range producer {
		producer[i] = -1
	}
	for span := 1; span < n; span *= 2 {
		next := make([]NodeID, n)
		copy(next, producer)
		for base := 0; base < n; base += 2 * span {
			for off := 0; off < span; off++ {
				a, c := base+off, base+off+span
				v := b.AddNode(work)
				if producer[a] >= 0 {
					b.AddEdge(producer[a], v)
				}
				if producer[c] >= 0 {
					b.AddEdge(producer[c], v)
				}
				next[a], next[c] = v, v
			}
		}
		producer = next
	}
	return b.MustBuild()
}

// CholeskyWorks sets the per-kernel tile costs of a tiled Cholesky
// factorization. Typical relative costs are POTRF : TRSM : SYRK ≈ 1 : 3 : 6
// for equal tile sizes (cubic kernels), but any positive values work.
type CholeskyWorks struct {
	Potrf int64 // diagonal factorization
	Trsm  int64 // triangular solve
	Syrk  int64 // symmetric rank-k update (includes GEMM updates)
}

// DefaultCholeskyWorks returns the 1:3:6 cost profile at the given unit.
func DefaultCholeskyWorks(unit int64) CholeskyWorks {
	return CholeskyWorks{Potrf: unit, Trsm: 3 * unit, Syrk: 6 * unit}
}

// Cholesky returns the task graph of a right-looking tiled Cholesky
// factorization of an N×N tile matrix — the canonical irregular DAG of
// task-based runtimes (PLASMA, StarPU, OpenMP tasks):
//
//	for k:        POTRF(k)                 after UPDATE(k,k,k−1)
//	for i>k:      TRSM(i,k)                after POTRF(k), UPDATE(i,k,k−1)
//	for i≥j>k:    UPDATE(i,j,k)            after TRSM(i,k), TRSM(j,k), UPDATE(i,j,k−1)
//
// Node counts: N potrf, N(N−1)/2 trsm, N(N²−1)/6 update, so
// W = N·wp + N(N−1)/2·wt + N(N²−1)/6·ws. Parallelism starts near zero,
// widens to Θ(N²), and collapses again — exactly the profile that makes
// fixed allotments interesting.
func Cholesky(n int, works CholeskyWorks) *DAG {
	if n <= 0 {
		panic(fmt.Sprintf("dag: Cholesky with n=%d", n))
	}
	if works.Potrf <= 0 || works.Trsm <= 0 || works.Syrk <= 0 {
		panic(fmt.Sprintf("dag: Cholesky with non-positive works %+v", works))
	}
	b := NewBuilder()
	// lastWriter[i][j] = node that last updated tile (i,j), or −1.
	lastWriter := make([][]NodeID, n)
	for i := range lastWriter {
		lastWriter[i] = make([]NodeID, n)
		for j := range lastWriter[i] {
			lastWriter[i][j] = -1
		}
	}
	dep := func(v NodeID, i, j int) {
		if lastWriter[i][j] >= 0 {
			b.AddEdge(lastWriter[i][j], v)
		}
	}
	for k := 0; k < n; k++ {
		potrf := b.AddNode(works.Potrf)
		dep(potrf, k, k)
		lastWriter[k][k] = potrf
		trsm := make([]NodeID, n)
		for i := k + 1; i < n; i++ {
			v := b.AddNode(works.Trsm)
			b.AddEdge(potrf, v)
			dep(v, i, k)
			lastWriter[i][k] = v
			trsm[i] = v
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j <= i; j++ {
				v := b.AddNode(works.Syrk)
				b.AddEdge(trsm[i], v)
				if j != i {
					b.AddEdge(trsm[j], v)
				}
				dep(v, i, j)
				lastWriter[i][j] = v
			}
		}
	}
	return b.MustBuild()
}

// CholeskyNodeCount returns the number of tasks in Cholesky(n, ·):
// N + N(N−1)/2 + N(N²−1)/6.
func CholeskyNodeCount(n int) int {
	return n + n*(n-1)/2 + n*(n*n-1)/6
}
