package dag

import (
	"math/rand"
	"testing"
)

func TestChainShape(t *testing.T) {
	g := Chain(5, 3)
	if g.TotalWork() != 15 || g.Span() != 15 {
		t.Errorf("Chain W=%d L=%d, want 15/15", g.TotalWork(), g.Span())
	}
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Errorf("Chain nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestBlockShape(t *testing.T) {
	g := Block(6, 4)
	if g.TotalWork() != 24 || g.Span() != 4 {
		t.Errorf("Block W=%d L=%d, want 24/4", g.TotalWork(), g.Span())
	}
	if g.NumEdges() != 0 {
		t.Errorf("Block edges=%d", g.NumEdges())
	}
}

func TestFigure1Shape(t *testing.T) {
	for _, m := range []int{2, 4, 8} {
		L := int64(12)
		g := Figure1(m, L)
		if g.Span() != L {
			t.Errorf("Figure1(m=%d) L=%d, want %d", m, g.Span(), L)
		}
		if g.TotalWork() != int64(m)*L {
			t.Errorf("Figure1(m=%d) W=%d, want %d", m, g.TotalWork(), int64(m)*L)
		}
	}
}

func TestFigure1TheoremSeparation(t *testing.T) {
	// The Theorem 1 gap: unlucky needs (W−L)/m + L = (2−1/m)L, clairvoyant
	// needs W/m = L.
	m, L := 4, int64(8)
	g := Figure1(m, L)
	unlucky := runGreedy(t, g, m, Unlucky{})
	clair := runGreedy(t, g, m, CriticalPathFirst{})
	wantUnlucky := (g.TotalWork()-L)/int64(m) + L // (m−1)L/m + L, exact when m | L
	if unlucky != wantUnlucky {
		t.Errorf("unlucky completion = %d, want %d", unlucky, wantUnlucky)
	}
	if clair != L {
		t.Errorf("clairvoyant completion = %d, want %d", clair, L)
	}
}

func TestFigure2Shape(t *testing.T) {
	g := Figure2(5, 9)
	if g.Span() != 6 { // chain 5 + one block node
		t.Errorf("Figure2 L=%d, want 6", g.Span())
	}
	if g.TotalWork() != 14 {
		t.Errorf("Figure2 W=%d, want 14", g.TotalWork())
	}
}

func TestFigure2EvenClairvoyantIsSlow(t *testing.T) {
	// Figure 2: chain must finish before the block exists, so even the
	// clairvoyant policy needs chainLen + ceil(blockWidth/m).
	chain, width, m := 6, 12, 4
	g := Figure2(chain, width)
	got := runGreedy(t, g, m, CriticalPathFirst{})
	want := int64(chain) + int64((width+m-1)/m)
	if got != want {
		t.Errorf("clairvoyant on Figure2 = %d ticks, want %d", got, want)
	}
}

func TestForkJoinShape(t *testing.T) {
	g := ForkJoin(2, 3, 2)
	// per stage: src + join + 3 parallel = 5 nodes of work 2 → W = 20.
	if g.TotalWork() != 20 {
		t.Errorf("ForkJoin W=%d, want 20", g.TotalWork())
	}
	// span per stage: src + one parallel + join = 6; two stages chained = 12.
	if g.Span() != 12 {
		t.Errorf("ForkJoin L=%d, want 12", g.Span())
	}
}

func TestWideChainShape(t *testing.T) {
	g := WideChain(2, 3, 1)
	// per segment: 3 band + 1 sync = 4 nodes → W = 8.
	if g.TotalWork() != 8 {
		t.Errorf("WideChain W=%d, want 8", g.TotalWork())
	}
	// span: band + sync per segment = 2, chained ×2 = 4.
	if g.Span() != 4 {
		t.Errorf("WideChain L=%d, want 4", g.Span())
	}
}

func TestSeriesParallelValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10; i++ {
		g := SeriesParallel(rng, 4, 5)
		if err := g.Validate(); err != nil {
			t.Fatalf("SeriesParallel invalid: %v", err)
		}
		if g.Span() > g.TotalWork() {
			t.Errorf("L=%d > W=%d", g.Span(), g.TotalWork())
		}
	}
}

func TestLayeredDeterministic(t *testing.T) {
	g1 := Layered(rand.New(rand.NewSource(9)), 4, 3, 5, 0.4)
	g2 := Layered(rand.New(rand.NewSource(9)), 4, 3, 5, 0.4)
	if g1.NumNodes() != g2.NumNodes() || g1.TotalWork() != g2.TotalWork() || g1.Span() != g2.Span() {
		t.Error("Layered not deterministic for equal seeds")
	}
}

func TestShapePanicsOnBadArgs(t *testing.T) {
	cases := []func(){
		func() { Chain(0, 1) },
		func() { Block(-1, 1) },
		func() { Figure1(1, 5) },
		func() { Figure1(2, 0) },
		func() { Figure2(0, 1) },
		func() { ForkJoin(0, 1, 1) },
		func() { WideChain(1, 0, 1) },
		func() { Layered(rand.New(rand.NewSource(1)), 0, 1, 1, 0.5) },
		func() { SeriesParallel(rand.New(rand.NewSource(1)), -1, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
