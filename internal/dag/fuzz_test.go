package dag

import (
	"encoding/json"
	"testing"
)

// FuzzDAGUnmarshal: arbitrary JSON must never panic; accepted graphs must
// be structurally valid with consistent W/L.
func FuzzDAGUnmarshal(f *testing.F) {
	f.Add([]byte(`{"work":[1,2],"edges":[[0,1]]}`))
	f.Add([]byte(`{"work":[1,1],"edges":[[0,1],[1,0]]}`))
	f.Add([]byte(`{"work":[],"edges":[]}`))
	f.Add([]byte(`{"work":[3],"edges":[[0,5]]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"work":[1,1,1,1],"edges":[[0,1],[1,2],[2,3],[0,3]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g DAG
		if err := json.Unmarshal(data, &g); err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var sum int64
		for v := 0; v < g.NumNodes(); v++ {
			sum += g.Work(NodeID(v))
		}
		if g.TotalWork() != sum {
			t.Fatalf("W=%d but node works sum to %d", g.TotalWork(), sum)
		}
		if g.Span() < 1 || g.Span() > sum {
			t.Fatalf("span %d outside [1, %d]", g.Span(), sum)
		}
		// Execution must terminate with all nodes done.
		s := NewState(&g)
		steps := 0
		var buf []NodeID
		for !s.Done() {
			buf = (ByID{}).Pick(s, 4, buf[:0])
			if len(buf) == 0 {
				t.Fatal("stuck: no ready nodes on incomplete graph")
			}
			for _, v := range buf {
				s.Apply(v, 1)
			}
			steps++
			if int64(steps) > sum+1 {
				t.Fatal("execution did not terminate in W steps")
			}
		}
	})
}
