package dag

// Composition combinators: build large jobs from verified pieces. Serial
// and Parallel form the series–parallel algebra over arbitrary DAGs
// (sources and sinks are connected pairwise in Serial), so any SP structure
// — and mixtures with the HPC kernels — can be assembled programmatically.

// Parallel returns the disjoint union of the given graphs: no edges between
// components, W = ΣW_i, L = max L_i. It panics on an empty argument list
// (programmer error).
func Parallel(gs ...*DAG) *DAG {
	if len(gs) == 0 {
		panic("dag: Parallel of nothing")
	}
	b := NewBuilder()
	for _, g := range gs {
		appendGraph(b, g)
	}
	return b.MustBuild()
}

// Serial chains the given graphs: every sink of g_i precedes every source
// of g_{i+1}, so W = ΣW_i and L = ΣL_i. It panics on an empty argument
// list.
func Serial(gs ...*DAG) *DAG {
	if len(gs) == 0 {
		panic("dag: Serial of nothing")
	}
	b := NewBuilder()
	var prevSinks []NodeID
	for _, g := range gs {
		offset := appendGraph(b, g)
		var sources, sinks []NodeID
		for v := 0; v < g.NumNodes(); v++ {
			if len(g.Predecessors(NodeID(v))) == 0 {
				sources = append(sources, offset+NodeID(v))
			}
			if len(g.Successors(NodeID(v))) == 0 {
				sinks = append(sinks, offset+NodeID(v))
			}
		}
		for _, u := range prevSinks {
			for _, v := range sources {
				b.AddEdge(u, v)
			}
		}
		prevSinks = sinks
	}
	return b.MustBuild()
}

// Repeat returns g chained serially k times.
func Repeat(g *DAG, k int) *DAG {
	if k < 1 {
		panic("dag: Repeat with k < 1")
	}
	gs := make([]*DAG, k)
	for i := range gs {
		gs[i] = g
	}
	return Serial(gs...)
}

// appendGraph copies g's nodes and edges into b and returns the node-ID
// offset of the copy.
func appendGraph(b *Builder, g *DAG) NodeID {
	offset := NodeID(len(b.work))
	for v := 0; v < g.NumNodes(); v++ {
		b.AddNode(g.Work(NodeID(v)))
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Successors(NodeID(v)) {
			b.AddEdge(offset+NodeID(v), offset+u)
		}
	}
	return offset
}
