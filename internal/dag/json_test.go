package dag

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := ForkJoin(2, 3, 4)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got DAG
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != orig.NumNodes() || got.NumEdges() != orig.NumEdges() {
		t.Errorf("round trip: nodes %d/%d edges %d/%d",
			got.NumNodes(), orig.NumNodes(), got.NumEdges(), orig.NumEdges())
	}
	if got.TotalWork() != orig.TotalWork() || got.Span() != orig.Span() {
		t.Errorf("round trip: W %d/%d L %d/%d",
			got.TotalWork(), orig.TotalWork(), got.Span(), orig.Span())
	}
}

func TestJSONRejectsCycle(t *testing.T) {
	var g DAG
	err := json.Unmarshal([]byte(`{"work":[1,1],"edges":[[0,1],[1,0]]}`), &g)
	if err == nil {
		t.Error("unmarshal accepted cyclic graph")
	}
}

func TestJSONRejectsBadWork(t *testing.T) {
	var g DAG
	err := json.Unmarshal([]byte(`{"work":[0],"edges":[]}`), &g)
	if err == nil {
		t.Error("unmarshal accepted zero work")
	}
}

func TestJSONRejectsMalformed(t *testing.T) {
	var g DAG
	if err := json.Unmarshal([]byte(`{"work": "nope"}`), &g); err == nil {
		t.Error("unmarshal accepted malformed JSON")
	}
}

func TestPropJSONRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := Layered(rng, 1+rng.Intn(5), 1+rng.Intn(4), 1+rng.Int63n(6), rng.Float64())
		data, err := json.Marshal(orig)
		if err != nil {
			return false
		}
		var got DAG
		if err := json.Unmarshal(data, &got); err != nil {
			return false
		}
		if got.NumNodes() != orig.NumNodes() ||
			got.TotalWork() != orig.TotalWork() ||
			got.Span() != orig.Span() ||
			got.NumEdges() != orig.NumEdges() {
			return false
		}
		for v := 0; v < got.NumNodes(); v++ {
			if got.Work(NodeID(v)) != orig.Work(NodeID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWriteDOT(t *testing.T) {
	g := Figure2(2, 3)
	var buf strings.Builder
	if err := WriteDOT(&buf, "fig2", g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`digraph "fig2"`, "n0 -> n1", "w=1", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Edge count in output matches the graph.
	if got := strings.Count(out, "->"); got != g.NumEdges() {
		t.Errorf("DOT has %d edges, want %d", got, g.NumEdges())
	}
	if err := WriteDOT(&buf, "nil", nil); err == nil {
		t.Error("WriteDOT accepted nil graph")
	}
}
