package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func policies(seed int64) []PickPolicy {
	return []PickPolicy{
		ByID{},
		Random{Rng: rand.New(rand.NewSource(seed))},
		Unlucky{},
		CriticalPathFirst{},
	}
}

func TestPickReturnsAtMostK(t *testing.T) {
	g := Block(10, 1)
	s := NewState(g)
	for _, pol := range policies(1) {
		for _, k := range []int{0, 1, 3, 10, 20} {
			got := pol.Pick(s, k, nil)
			want := k
			if want > 10 {
				want = 10
			}
			if len(got) != want {
				t.Errorf("%s: Pick(k=%d) returned %d nodes, want %d", pol.Name(), k, len(got), want)
			}
		}
	}
}

func TestPickReturnsReadyDistinctNodes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Layered(rng, 1+rng.Intn(4), 1+rng.Intn(5), 2, 0.5)
		s := NewState(g)
		// Advance a few random steps so the ready set is nontrivial.
		var buf []NodeID
		for i := 0; i < 3 && !s.Done(); i++ {
			buf = s.ReadyNodes(buf[:0])
			s.Apply(buf[rng.Intn(len(buf))], 1)
		}
		if s.Done() {
			return true
		}
		for _, pol := range policies(seed) {
			got := pol.Pick(s, 3, nil)
			seen := map[NodeID]bool{}
			for _, v := range got {
				if seen[v] || !s.IsReady(v) {
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestByIDPrefersLowIDs(t *testing.T) {
	g := Block(5, 1)
	s := NewState(g)
	got := (ByID{}).Pick(s, 2, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("ByID picked %v, want [0 1]", got)
	}
}

func TestUnluckyAvoidsCriticalPathOnFigure1(t *testing.T) {
	// Figure 1: chain nodes have the lowest IDs and the longest downward
	// paths. Unlucky must pick block nodes (short paths) first.
	g := Figure1(4, 6)
	s := NewState(g)
	got := (Unlucky{}).Pick(s, 3, nil)
	for _, v := range got {
		if s.DownLength(v) != 1 {
			t.Errorf("Unlucky picked node %d with down-length %d, want block node (1)", v, s.DownLength(v))
		}
	}
}

func TestCriticalPathFirstPicksChainOnFigure1(t *testing.T) {
	g := Figure1(4, 6)
	s := NewState(g)
	got := (CriticalPathFirst{}).Pick(s, 1, nil)
	if len(got) != 1 || s.DownLength(got[0]) != g.Span() {
		t.Errorf("CriticalPathFirst picked %v (down %d), want chain head (down %d)",
			got, s.DownLength(got[0]), g.Span())
	}
}

func TestRandomPickDeterministicPerSeed(t *testing.T) {
	g := Block(20, 1)
	pick := func(seed int64) []NodeID {
		s := NewState(g)
		return Random{Rng: rand.New(rand.NewSource(seed))}.Pick(s, 5, nil)
	}
	a, b := pick(3), pick(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Random pick not deterministic: %v vs %v", a, b)
		}
	}
}

func TestPickAppendsToDst(t *testing.T) {
	g := Block(4, 1)
	s := NewState(g)
	pre := []NodeID{99}
	got := (ByID{}).Pick(s, 2, pre)
	if len(got) != 3 || got[0] != 99 {
		t.Errorf("Pick did not append to dst: %v", got)
	}
}

func TestPolicyNames(t *testing.T) {
	want := map[string]bool{"by-id": true, "random": true, "unlucky": true, "critical-path-first": true}
	for _, pol := range policies(1) {
		if !want[pol.Name()] {
			t.Errorf("unexpected policy name %q", pol.Name())
		}
	}
}
