package dag

import (
	"testing"
	"testing/quick"
)

func TestWavefrontShape(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		g := Wavefront(n, 3)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		wantW := int64(n*n) * 3
		wantL := int64(2*n-1) * 3
		if g.TotalWork() != wantW || g.Span() != wantL {
			t.Errorf("Wavefront(%d): W=%d L=%d, want %d/%d", n, g.TotalWork(), g.Span(), wantW, wantL)
		}
	}
}

func TestWavefrontDiagonalParallelism(t *testing.T) {
	// On n processors a wavefront completes in exactly 2n−1 steps (one
	// anti-diagonal per step).
	n := 6
	g := Wavefront(n, 1)
	ticks := runGreedy(t, g, n, ByID{})
	if ticks != int64(2*n-1) {
		t.Errorf("wavefront on %d procs took %d ticks, want %d", n, ticks, 2*n-1)
	}
}

func TestReductionTreePowerOfTwo(t *testing.T) {
	g := ReductionTree(8, 2) // h = 3
	if g.TotalWork() != 15*2 {
		t.Errorf("W = %d, want 30", g.TotalWork())
	}
	if g.Span() != 4*2 {
		t.Errorf("L = %d, want 8", g.Span())
	}
}

func TestReductionTreeOddSizes(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7, 9} {
		g := ReductionTree(n, 1)
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Exactly one sink (the root).
		sinks := 0
		for v := 0; v < g.NumNodes(); v++ {
			if len(g.Successors(NodeID(v))) == 0 {
				sinks++
			}
		}
		if sinks != 1 {
			t.Errorf("n=%d: %d sinks, want 1", n, sinks)
		}
	}
}

func TestFFTShape(t *testing.T) {
	// n=8: h=3 stages × 4 butterflies = 12 nodes; span 3.
	g := FFT(8, 1)
	if g.NumNodes() != 12 {
		t.Errorf("nodes = %d, want 12", g.NumNodes())
	}
	if g.TotalWork() != 12 || g.Span() != 3 {
		t.Errorf("W=%d L=%d, want 12/3", g.TotalWork(), g.Span())
	}
}

func TestFFTFullParallelismPerStage(t *testing.T) {
	// With n/2 processors, each stage is one step: span ticks total.
	g := FFT(16, 1)
	ticks := runGreedy(t, g, 8, ByID{})
	if ticks != g.Span() {
		t.Errorf("FFT(16) on 8 procs took %d ticks, want %d", ticks, g.Span())
	}
}

func TestFFTPanicsOnBadN(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FFT(%d) did not panic", n)
				}
			}()
			FFT(n, 1)
		}()
	}
}

func TestCholeskyNodeCountAndWork(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6} {
		works := DefaultCholeskyWorks(2)
		g := Cholesky(n, works)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() != CholeskyNodeCount(n) {
			t.Errorf("n=%d: nodes = %d, want %d", n, g.NumNodes(), CholeskyNodeCount(n))
		}
		nn := int64(n)
		wantW := nn*works.Potrf + nn*(nn-1)/2*works.Trsm + nn*(nn*nn-1)/6*works.Syrk
		if g.TotalWork() != wantW {
			t.Errorf("n=%d: W = %d, want %d", n, g.TotalWork(), wantW)
		}
	}
}

func TestCholeskySpanGrowsLinearly(t *testing.T) {
	// The critical path goes through every POTRF plus a TRSM+SYRK pair per
	// step: span must grow ~linearly in N while W grows cubically.
	works := DefaultCholeskyWorks(1)
	prev := int64(0)
	for _, n := range []int{2, 4, 8} {
		g := Cholesky(n, works)
		if g.Span() <= prev {
			t.Errorf("span not increasing at n=%d", n)
		}
		prev = g.Span()
		// Span lower bound: the POTRF chain alone.
		if g.Span() < int64(n)*works.Potrf {
			t.Errorf("n=%d: span %d below POTRF chain", n, g.Span())
		}
		// Parallelism W/L must grow with n (the point of the shape).
		if n >= 4 {
			par := float64(g.TotalWork()) / float64(g.Span())
			if par < float64(n)/2 {
				t.Errorf("n=%d: parallelism %.1f too small", n, par)
			}
		}
	}
}

func TestCholeskySingleTileIsOnePotrf(t *testing.T) {
	g := Cholesky(1, DefaultCholeskyWorks(5))
	if g.NumNodes() != 1 || g.TotalWork() != 5 {
		t.Errorf("Cholesky(1): nodes=%d W=%d", g.NumNodes(), g.TotalWork())
	}
}

func TestCholeskyPanics(t *testing.T) {
	cases := []func(){
		func() { Cholesky(0, DefaultCholeskyWorks(1)) },
		func() { Cholesky(3, CholeskyWorks{Potrf: 0, Trsm: 1, Syrk: 1}) },
		func() { Wavefront(0, 1) },
		func() { ReductionTree(0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPropHPCShapesGreedyBound(t *testing.T) {
	// All HPC shapes respect the Brent bound under greedy execution.
	f := func(sel, procSel uint8) bool {
		procs := 1 + int(procSel%8)
		var g *DAG
		switch sel % 4 {
		case 0:
			g = Wavefront(2+int(sel%5), 1+int64(sel%3))
		case 1:
			g = ReductionTree(1+int(sel%12), 1)
		case 2:
			g = FFT(2<<(sel%4), 1)
		default:
			g = Cholesky(1+int(sel%5), DefaultCholeskyWorks(1))
		}
		s := NewState(g)
		var ticks int64
		var buf []NodeID
		for !s.Done() {
			buf = (ByID{}).Pick(s, procs, buf[:0])
			for _, v := range buf {
				s.Apply(v, 1)
			}
			ticks++
		}
		w, l, a := g.TotalWork(), g.Span(), int64(procs)
		return ticks <= (w-l+a-1)/a+l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
