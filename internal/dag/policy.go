package dag

import (
	"cmp"
	"math/rand"
	"slices"
)

// PickPolicy chooses which k ready nodes of a job execute when the scheduler
// grants the job k processors. The paper's scheduler is semi-non-clairvoyant:
// it cannot distinguish ready nodes, so the choice is "arbitrary" — made by
// the environment, not the algorithm. Different policies realize different
// environments: a deterministic order, a random order, the Theorem 1
// adversary, or a clairvoyant critical-path-first oracle used by informed
// baselines.
type PickPolicy interface {
	// Pick appends up to k ready nodes of s to dst and returns it. It must
	// return min(k, s.ReadyCount()) nodes, each ready, without duplicates.
	Pick(s *State, k int, dst []NodeID) []NodeID
	// Name identifies the policy in reports.
	Name() string
}

// ByID picks ready nodes in increasing node-ID order: deterministic and
// oblivious to structure. For the shape constructors in this package, chain
// nodes have the lowest IDs, so ByID behaves benignly on Figure 1.
type ByID struct{}

// Pick implements PickPolicy.
func (ByID) Pick(s *State, k int, dst []NodeID) []NodeID {
	start := len(dst)
	dst = s.ReadyNodes(dst)
	picked := dst[start:]
	slices.Sort(picked)
	if len(picked) > k {
		dst = dst[:start+k]
	}
	return dst
}

// Name implements PickPolicy.
func (ByID) Name() string { return "by-id" }

// EventSafe reports that ByID's choice is stable across an interval in which
// the ready set is unchanged and only picked nodes' remaining work shrinks:
// the k lowest-ID ready nodes stay the k lowest-ID ready nodes. The evented
// engine may hold its pick for a whole inter-event interval.
func (ByID) EventSafe() bool { return true }

// Random picks k ready nodes uniformly at random (deterministic given the
// seeded source). It models an oblivious runtime picking whichever ready
// tasks it happens to hold.
type Random struct{ Rng *rand.Rand }

// Pick implements PickPolicy.
func (p Random) Pick(s *State, k int, dst []NodeID) []NodeID {
	start := len(dst)
	dst = s.ReadyNodes(dst)
	picked := dst[start:]
	// Sort first so the shuffle is deterministic regardless of internal
	// ready-set ordering, then partial Fisher–Yates.
	slices.Sort(picked)
	n := len(picked)
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		j := i + p.Rng.Intn(n-i)
		picked[i], picked[j] = picked[j], picked[i]
	}
	return dst[:start+k]
}

// Name implements PickPolicy.
func (Random) Name() string { return "random" }

// Unlucky is the Theorem 1 adversary: it always prefers ready nodes with the
// shortest remaining downward path, starving the critical path for as long
// as possible. On the Figure 1 DAG it drains the parallel block before
// touching the chain, forcing completion time (W−L)/m + L.
type Unlucky struct{}

// Pick implements PickPolicy.
func (Unlucky) Pick(s *State, k int, dst []NodeID) []NodeID {
	return pickByDown(s, k, dst, false)
}

// Name implements PickPolicy.
func (Unlucky) Name() string { return "unlucky" }

// EventSafe reports that Unlucky's choice is stable between events: work only
// lands on picked nodes, so a picked node's remaining downward path can only
// shrink — it stays lexicographically ahead of every unpicked node (ties
// break by ID, and a tied pick that shrinks becomes strictly shorter). The
// shortest-down-path set is therefore invariant across the interval. Note the
// same argument fails for CriticalPathFirst: its picked longest paths shrink
// and can fall below unpicked ones mid-interval.
func (Unlucky) EventSafe() bool { return true }

// CriticalPathFirst is the clairvoyant oracle: it prefers ready nodes with
// the longest remaining downward path, the choice an informed scheduler
// would make. Only baselines explicitly modeled as clairvoyant may use it.
type CriticalPathFirst struct{}

// Pick implements PickPolicy.
func (CriticalPathFirst) Pick(s *State, k int, dst []NodeID) []NodeID {
	return pickByDown(s, k, dst, true)
}

// Name implements PickPolicy.
func (CriticalPathFirst) Name() string { return "critical-path-first" }

// pickByDown sorts the ready set by remaining downward path length
// (descending when longestFirst) with node ID as the deterministic
// tiebreaker, and keeps the first k.
func pickByDown(s *State, k int, dst []NodeID, longestFirst bool) []NodeID {
	start := len(dst)
	dst = s.ReadyNodes(dst)
	picked := dst[start:]
	slices.SortFunc(picked, func(a, b NodeID) int {
		da, db := s.DownLength(a), s.DownLength(b)
		if da != db {
			if longestFirst {
				return cmp.Compare(db, da)
			}
			return cmp.Compare(da, db)
		}
		return cmp.Compare(a, b)
	})
	if len(picked) > k {
		dst = dst[:start+k]
	}
	return dst
}
